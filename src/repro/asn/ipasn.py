"""IP-to-ASN mapping (the Team Cymru service, reimplemented over the sim).

The paper maps each /24 to an AS by looking up its .0 address, noting that
ASes virtually never split inside a /24 (0.005% of blocks differ between
.0 and .128) and that the data covers 99.41% of blocks.  The table here is
prefix-based: ASes own ranges of consecutive /24 block ids, so the .0/.128
convention is exact by construction, and coverage gaps are explicit.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.net.ipaddr import block_of, ip_in_block

__all__ = ["AsRecord", "IpAsnTable"]


@dataclass(frozen=True)
class AsRecord:
    """One autonomous system: number, registered name, country."""

    asn: int
    name: str
    country: str


class IpAsnTable:
    """Longest-prefix style lookup from /24 block ranges to AS numbers."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._asns: list[int] = []
        self._records: dict[int, AsRecord] = {}

    def add_range(self, first_block: int, n_blocks: int, record: AsRecord) -> None:
        """Register ``n_blocks`` consecutive /24s as belonging to an AS.

        Ranges must be added in ascending, non-overlapping order (the way
        a registry allocates them); violations raise ValueError.
        """
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if self._starts and first_block < self._ends[-1]:
            raise ValueError(
                f"range starting at {first_block} overlaps or precedes "
                f"existing range ending at {self._ends[-1]}"
            )
        self._starts.append(first_block)
        self._ends.append(first_block + n_blocks)
        self._asns.append(record.asn)
        self._records.setdefault(record.asn, record)

    def asn_of_block(self, block_id: int) -> int | None:
        """AS number owning a /24, or None when unmapped."""
        i = bisect_right(self._starts, block_id) - 1
        if i >= 0 and block_id < self._ends[i]:
            return self._asns[i]
        return None

    def asn_of_ip(self, ip: int) -> int | None:
        """AS number for a full address (via its covering /24)."""
        return self.asn_of_block(block_of(ip))

    def asn_of_block_dot0(self, block_id: int) -> int | None:
        """The paper's convention: map the block by its .0 address."""
        return self.asn_of_ip(ip_in_block(block_id, 0))

    def record_of(self, asn: int) -> AsRecord | None:
        return self._records.get(asn)

    def all_records(self) -> list[AsRecord]:
        return list(self._records.values())

    def blocks_of_asn(self, asn: int) -> np.ndarray:
        """Every /24 block id registered to an AS."""
        pieces = [
            np.arange(start, end, dtype=np.int64)
            for start, end, owner in zip(self._starts, self._ends, self._asns)
            if owner == asn
        ]
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(pieces)

    def map_blocks(self, block_ids: np.ndarray) -> np.ndarray:
        """Vectorized block→ASN lookup; -1 where unmapped."""
        out = np.full(len(block_ids), -1, dtype=np.int64)
        for i, block_id in enumerate(np.asarray(block_ids).tolist()):
            asn = self.asn_of_block(int(block_id))
            if asn is not None:
                out[i] = asn
        return out

    def coverage(self, block_ids: np.ndarray) -> float:
        """Fraction of blocks with an AS mapping (paper: 99.41%)."""
        if len(block_ids) == 0:
            return 0.0
        return float((self.map_blocks(block_ids) >= 0).mean())

"""AS-to-organization mapping via WHOIS-style string clustering.

Follows the paper's recipe (section 2.3.2, building on Cai et al.):

1. normalize every AS's registered WHOIS name (case, punctuation, and
   corporate boilerplate like "Inc."/"LLC" stripped);
2. cluster ASes whose normalized names match;
3. to find an organization P, keyword-match against cluster names, take
   every AS in the matching cluster(s), and join with the IP/AS table to
   recover all of P's /24 blocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.asn.ipasn import AsRecord, IpAsnTable

__all__ = ["OrgCluster", "OrgMapper", "normalize_org_name"]

# Corporate boilerplate that WHOIS names carry but organizations don't.
_BOILERPLATE = {
    "inc", "incorporated", "llc", "ltd", "limited", "corp", "corporation",
    "co", "company", "sa", "gmbh", "ag", "plc", "holdings", "group",
    "communications", "telecommunications", "telecom", "telecomunicacoes",
    "network", "networks", "internet", "services", "broadband", "isp",
    "cable", "backbone", "online",
}

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def normalize_org_name(name: str) -> str:
    """Normalized clustering key for a WHOIS organization name.

    Lowercases, splits to alphanumeric tokens, drops corporate boilerplate,
    and rejoins — so "Time Warner Cable Inc." and "TIME-WARNER-CABLE"
    cluster together.  Falls back to the full token string when everything
    was boilerplate (e.g. an ISP literally named "The Internet Company").
    """
    tokens = _TOKEN_RE.findall(name.lower())
    kept = [t for t in tokens if t not in _BOILERPLATE]
    if not kept:
        kept = tokens
    return " ".join(kept)


@dataclass
class OrgCluster:
    """One organization: a normalized name key and its member ASes."""

    key: str
    display_name: str
    asns: list[int] = field(default_factory=list)

    def matches_keyword(self, keyword: str) -> bool:
        return keyword.lower() in self.key


class OrgMapper:
    """Cluster AS records by organization and answer keyword queries."""

    def __init__(self, records: list[AsRecord]) -> None:
        self._clusters: dict[str, OrgCluster] = {}
        for record in records:
            key = normalize_org_name(record.name)
            cluster = self._clusters.get(key)
            if cluster is None:
                cluster = OrgCluster(key=key, display_name=record.name)
                self._clusters[key] = cluster
            cluster.asns.append(record.asn)

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    def clusters(self) -> list[OrgCluster]:
        return list(self._clusters.values())

    def cluster_of_asn(self, asn: int) -> OrgCluster | None:
        for cluster in self._clusters.values():
            if asn in cluster.asns:
                return cluster
        return None

    def find_clusters(self, keyword: str) -> list[OrgCluster]:
        """All clusters whose normalized name contains the keyword."""
        return [c for c in self._clusters.values() if c.matches_keyword(keyword)]

    def asns_of_org(self, keyword: str) -> list[int]:
        """Every AS in every cluster matching the keyword."""
        asns: list[int] = []
        for cluster in self.find_clusters(keyword):
            asns.extend(cluster.asns)
        return sorted(set(asns))

    def blocks_of_org(self, keyword: str, table: IpAsnTable) -> np.ndarray:
        """All /24 blocks of an organization: the paper's final join."""
        pieces = [table.blocks_of_asn(asn) for asn in self.asns_of_org(keyword)]
        pieces = [p for p in pieces if len(p)]
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))

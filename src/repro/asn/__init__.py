"""Organization substrate: IP→ASN mapping and AS→organization clustering.

The paper joins three mappings to reason about operators: Team Cymru's
IP-to-ASN table (looked up at each block's .0 address), WHOIS records, and
a string-clustering AS-to-organization mapper from prior work (Cai et al.,
IMC 2010).  This package reimplements the mapping layer over synthetic AS
registries produced by the world model.
"""

from repro.asn.ipasn import AsRecord, IpAsnTable
from repro.asn.orgs import OrgCluster, OrgMapper, normalize_org_name

__all__ = [
    "AsRecord",
    "IpAsnTable",
    "OrgCluster",
    "OrgMapper",
    "normalize_org_name",
]

"""Named measurement scenarios: the paper's datasets, recreated.

Each scenario pairs a round schedule with the population it observes:

* ``S51W`` — the two-week Internet survey (2% sample, every address
  probed each round).  Used as ground truth for the section 3 validations.
* ``A12W`` — the 35-day Trinocular dataset from Los Angeles with its
  5.5-hour prober restarts; ``A12J`` and ``A12C`` are the concurrent Keio
  and Colorado State vantage points (same world, independent probing
  randomness).
* ``campus`` — the USC-like ground-truth network of section 3.2.4:
  heavily overprovisioned sparse wireless blocks, dynamic pools, and
  general-use blocks with pockets of dynamic addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.addrmodel import (
    make_always_on,
    make_dead,
    make_diurnal,
    make_dynamic_pool,
    make_trending,
    merge_behaviors,
)
from repro.net.blocks import Block24
from repro.probing.rounds import RoundSchedule

__all__ = [
    "CampusBlock",
    "SCENARIO_SCHEDULES",
    "build_campus",
    "schedule_for",
    "survey_population",
]

SCENARIO_SCHEDULES = {
    # Two weeks, no restarts (survey infrastructure is simpler).
    "S51W": dict(days=14.0, restart_interval_s=0.0, start_s=0.0),
    # 35 days, restart every 5.5 hours, starting 17:18 UTC like A_12w.
    "A12W": dict(days=35.0, restart_interval_s=5.5 * 3600, start_s=17.3 * 3600),
    "A12J": dict(days=35.0, restart_interval_s=5.5 * 3600, start_s=17.3 * 3600),
    "A12C": dict(days=35.0, restart_interval_s=5.5 * 3600, start_s=17.3 * 3600),
    # The 2014-04 measurement policy: weekly restarts, which the paper
    # notes were adopted to suppress the Figure 10 artifact.
    "A16ALL": dict(days=35.0, restart_interval_s=7 * 86400.0, start_s=0.0),
}


def schedule_for(name: str) -> RoundSchedule:
    """Round schedule of a named scenario."""
    try:
        params = SCENARIO_SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIO_SCHEDULES)}"
        ) from None
    return RoundSchedule.for_days(
        params["days"],
        start_s=params["start_s"],
        restart_interval_s=params["restart_interval_s"],
    )


def _survey_block(
    block_id: int, rng: np.random.Generator, duration_s: float = 14 * 86400.0
) -> Block24:
    """One survey block drawn from a realistic mixture.

    The mixture covers the paper's Figure 1–3 archetypes: sparse-stable,
    dense-low-availability (dynamic churn), strongly diurnal, mixed-use
    with a diurnal pocket, near-empty, and non-stationary (trending)
    blocks — the paper found ~20% of survey blocks drift by more than one
    address per day.
    """
    kind = rng.choice(
        ["sparse_stable", "dense_dynamic", "diurnal", "mixed", "sparse", "trending"],
        p=[0.25, 0.15, 0.16, 0.18, 0.11, 0.15],
    )
    phase = rng.uniform(0, 86400.0)
    if kind == "sparse_stable":
        n_active = int(rng.integers(20, 80))
        behavior = merge_behaviors(
            make_always_on(n_active, p_response=rng.uniform(0.6, 0.95)),
            make_dead(256 - n_active),
        )
    elif kind == "dense_dynamic":
        n_active = int(rng.integers(180, 256))
        mean_up = rng.uniform(1, 4) * 3600
        mean_down = mean_up * rng.uniform(2.0, 6.0)
        behavior = merge_behaviors(
            make_dynamic_pool(n_active, mean_up, mean_down),
            make_dead(256 - n_active),
        )
    elif kind == "diurnal":
        n_diurnal = int(rng.integers(60, 180))
        n_stable = int(rng.integers(10, 60))
        behavior = merge_behaviors(
            make_always_on(n_stable, p_response=rng.uniform(0.7, 0.95)),
            make_diurnal(
                n_diurnal,
                phase_s=(phase + rng.uniform(0, 2 * 3600, n_diurnal)) % 86400.0,
                uptime_s=rng.uniform(8, 16) * 3600,
                sigma_start_s=rng.uniform(0, 1.5) * 3600,
                sigma_duration_s=rng.uniform(0, 1.5) * 3600,
            ),
            make_dead(256 - n_diurnal - n_stable),
        )
    elif kind == "mixed":
        # General-use block with a marginal diurnal pocket: the hard case
        # that produces the paper's Table 1 false negatives.
        n_stable = int(rng.integers(40, 120))
        n_pocket = int(rng.integers(4, 24))
        behavior = merge_behaviors(
            make_always_on(n_stable, p_response=rng.uniform(0.7, 0.95)),
            make_diurnal(
                n_pocket,
                phase_s=(phase + rng.uniform(0, 3600, n_pocket)) % 86400.0,
                uptime_s=rng.uniform(8, 12) * 3600,
                sigma_start_s=rng.uniform(0, 1.0) * 3600,
            ),
            make_dead(256 - n_stable - n_pocket),
        )
    elif kind == "sparse":
        n_active = int(rng.integers(16, 25))
        behavior = merge_behaviors(
            make_dynamic_pool(n_active, 3 * 3600, 12 * 3600),
            make_dead(256 - n_active),
        )
    else:  # trending: hosts deployed or decommissioned mid-survey
        n_stable = int(rng.integers(20, 70))
        n_moving = int(rng.integers(25, 90))
        departing = bool(rng.random() < 0.4)
        events = rng.uniform(0.0, duration_s, n_moving)
        behavior = merge_behaviors(
            make_always_on(n_stable, p_response=rng.uniform(0.7, 0.95)),
            make_trending(n_moving, events, departing=departing),
            make_dead(256 - n_stable - n_moving),
        )
    return Block24(block_id=block_id, behavior=behavior)


def survey_population(n_blocks: int, seed: int = 0) -> list[Block24]:
    """An S51W-like population of address-level survey blocks."""
    children = np.random.SeedSequence(seed).spawn(n_blocks)
    return [
        _survey_block(0x0A_00_00 + i, np.random.default_rng(child))
        for i, child in enumerate(children)
    ]


@dataclass
class CampusBlock:
    """A campus block plus the operator's ground-truth label."""

    block: Block24
    usage: str  # "wireless", "dynamic", "general", "server"
    truly_diurnal: bool
    rdns_names: list = field(default_factory=list)


def _wireless_block(block_id: int, rng: np.random.Generator) -> CampusBlock:
    """Overprovisioned campus wireless: one address per student, ~10 live.

    Diurnal in spirit but too sparse for Trinocular's 15-address floor —
    the paper's USC false negatives.
    """
    n_assigned = int(rng.integers(8, 14))
    behavior = merge_behaviors(
        make_diurnal(
            n_assigned,
            phase_s=rng.uniform(8 * 3600, 11 * 3600, n_assigned),
            uptime_s=rng.uniform(6, 10) * 3600,
            sigma_start_s=3600.0,
        ),
        make_dead(256 - n_assigned),
    )
    names = [f"wireless-{i:03d}.campus.example.edu" for i in range(256)]
    return CampusBlock(
        block=Block24(block_id, behavior),
        usage="wireless",
        truly_diurnal=True,
        rdns_names=names,
    )


def _dynamic_block(block_id: int, rng: np.random.Generator) -> CampusBlock:
    n_pool = int(rng.integers(80, 200))
    behavior = merge_behaviors(
        make_diurnal(
            n_pool,
            phase_s=rng.uniform(8 * 3600, 10 * 3600, n_pool),
            uptime_s=rng.uniform(8, 12) * 3600,
            sigma_start_s=1800.0,
        ),
        make_dead(256 - n_pool),
    )
    names = [f"dyn-dhcp-{i:03d}.campus.example.edu" for i in range(256)]
    return CampusBlock(
        block=Block24(block_id, behavior),
        usage="dynamic",
        truly_diurnal=True,
        rdns_names=names,
    )


def _general_block(
    block_id: int, rng: np.random.Generator, with_pocket: bool
) -> CampusBlock:
    """Departmental general-use block, possibly with a dynamic pocket.

    The paper's first USC surprise: decentralized address management
    leaves pockets of dynamic addresses (often 16 at a time) that make
    otherwise general-use blocks diurnal.
    """
    n_stable = int(rng.integers(60, 140))
    parts = [make_always_on(n_stable, p_response=0.9)]
    names = [f"host-{i:03d}.dept.example.edu" for i in range(256)]
    n_pocket = 0
    if with_pocket:
        n_pocket = 16
        parts.append(
            make_diurnal(
                n_pocket,
                phase_s=rng.uniform(8 * 3600, 9 * 3600, n_pocket),
                uptime_s=9 * 3600,
                sigma_start_s=1800.0,
            )
        )
        for i in range(n_stable, n_stable + n_pocket):
            names[i] = f"dyn-{i:03d}.dept.example.edu"
    parts.append(make_dead(256 - n_stable - n_pocket))
    return CampusBlock(
        block=Block24(block_id, merge_behaviors(*parts)),
        usage="general",
        truly_diurnal=with_pocket,
        rdns_names=names,
    )


def _server_block(block_id: int, rng: np.random.Generator) -> CampusBlock:
    n_active = int(rng.integers(40, 120))
    behavior = merge_behaviors(
        make_always_on(n_active, p_response=0.97), make_dead(256 - n_active)
    )
    names = [f"srv-{i:03d}.dc.example.edu" for i in range(256)]
    return CampusBlock(
        block=Block24(block_id, behavior),
        usage="server",
        truly_diurnal=False,
        rdns_names=names,
    )


def build_campus(
    seed: int = 0,
    n_wireless: int = 142,
    n_dynamic: int = 32,
    n_general: int = 60,
    n_general_with_pocket: int = 16,
    n_server: int = 20,
) -> list[CampusBlock]:
    """The USC-like campus of section 3.2.4 (defaults match the paper's
    counts: 142 wireless and 32 dynamic blocks, general-use blocks a
    quarter of which hide dynamic pockets)."""
    rng = np.random.default_rng(seed)
    blocks: list[CampusBlock] = []
    next_id = 0x80_00_00
    for _ in range(n_wireless):
        blocks.append(_wireless_block(next_id, rng))
        next_id += 1
    for _ in range(n_dynamic):
        blocks.append(_dynamic_block(next_id, rng))
        next_id += 1
    for i in range(n_general):
        blocks.append(_general_block(next_id, rng, i < n_general_with_pocket))
        next_id += 1
    for _ in range(n_server):
        blocks.append(_server_block(next_id, rng))
        next_id += 1
    return blocks

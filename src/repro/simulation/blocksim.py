"""Controlled diurnal-block simulations (paper section 3.2.2).

One /24 with exact ground truth: 50 always-responding addresses, ``n_d``
diurnal addresses up 8 hours a day, the rest dead.  Each diurnal address i
gets a start-of-day phase φ_i drawn once, uniformly from [0, Φ]; per-day
Gaussian noise can perturb the window start (σ_s) and duration (σ_d).  The
paper reports detection accuracy over 10 batches of 100 experiments while
sweeping n_d (Figure 7), Φ (Figure 8), and σ_d (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.classify import DiurnalClass
from repro.core.pipeline import MeasurementConfig, measure_block
from repro.net.addrmodel import (
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
)
from repro.net.blocks import Block24
from repro.probing.rounds import RoundSchedule

__all__ = [
    "ControlledBlockConfig",
    "SweepPoint",
    "accuracy_sweep",
    "detection_accuracy",
    "run_controlled_block",
]


@dataclass(frozen=True)
class ControlledBlockConfig:
    """Parameters of the section 3.2.2 controlled block.

    Defaults are the paper's: 50 stable + 100 diurnal addresses, 8-hour
    uptime, 4-week observation, no phase spread or noise.
    """

    n_stable: int = 50
    n_diurnal: int = 100
    uptime_s: float = 8 * 3600.0
    base_phase_s: float = 8 * 3600.0
    phi_max_s: float = 0.0
    sigma_start_s: float = 0.0
    sigma_duration_s: float = 0.0
    p_response: float = 0.95
    days: float = 28.0
    strict_only: bool = True
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)

    def __post_init__(self) -> None:
        if self.n_stable + self.n_diurnal > 256:
            raise ValueError("more than 256 addresses in a /24")
        if self.n_diurnal < 1:
            raise ValueError("need at least one diurnal address")


def build_controlled_block(
    config: ControlledBlockConfig, rng: np.random.Generator
) -> Block24:
    """Assemble the controlled block, drawing per-address phases φ_i."""
    phases = config.base_phase_s + rng.uniform(
        0.0, max(config.phi_max_s, 1e-9), size=config.n_diurnal
    )
    parts = [
        make_always_on(config.n_stable, p_response=config.p_response),
        make_diurnal(
            config.n_diurnal,
            phase_s=phases % 86400.0,
            uptime_s=config.uptime_s,
            p_response=config.p_response,
            sigma_start_s=config.sigma_start_s,
            sigma_duration_s=config.sigma_duration_s,
        ),
    ]
    n_dead = 256 - config.n_stable - config.n_diurnal
    if n_dead:
        parts.append(make_dead(n_dead))
    return Block24(block_id=1, behavior=merge_behaviors(*parts))


def run_controlled_block(
    config: ControlledBlockConfig, rng: np.random.Generator
) -> bool:
    """One experiment: simulate, probe, estimate, classify.

    Returns True when the block is detected diurnal (strictly, unless
    ``strict_only`` is False, in which case relaxed also counts).
    """
    block = build_controlled_block(config, rng)
    schedule = RoundSchedule.for_days(config.days)
    result = measure_block(block, schedule, rng, config.measurement)
    if result.report is None:
        return False
    if config.strict_only:
        return result.report.label is DiurnalClass.STRICT
    return result.report.is_diurnal


def detection_accuracy(
    config: ControlledBlockConfig, n_experiments: int, seed: int = 0
) -> float:
    """Fraction of experiments that detect the block as diurnal."""
    children = np.random.SeedSequence(seed).spawn(n_experiments)
    hits = sum(
        run_controlled_block(config, np.random.default_rng(child))
        for child in children
    )
    return hits / n_experiments


@dataclass
class SweepPoint:
    """Accuracy statistics at one sweep value (paper's error bars)."""

    value: float
    batch_accuracies: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.batch_accuracies))

    @property
    def q1(self) -> float:
        return float(np.percentile(self.batch_accuracies, 25))

    @property
    def q3(self) -> float:
        return float(np.percentile(self.batch_accuracies, 75))


def accuracy_sweep(
    base: ControlledBlockConfig,
    param: str,
    values: list,
    n_batches: int = 10,
    experiments_per_batch: int = 100,
    seed: int = 0,
) -> list[SweepPoint]:
    """Sweep one config parameter, batching experiments as the paper does.

    ``param`` is any :class:`ControlledBlockConfig` field name (e.g.
    ``"n_diurnal"``, ``"phi_max_s"``, ``"sigma_duration_s"``).
    """
    points = []
    for vi, value in enumerate(values):
        config = replace(base, **{param: value})
        batches = np.array(
            [
                detection_accuracy(
                    config,
                    experiments_per_batch,
                    seed=seed + 1_000_000 * vi + 1_000 * b,
                )
                for b in range(n_batches)
            ]
        )
        points.append(SweepPoint(value=float(value), batch_accuracies=batches))
    return points

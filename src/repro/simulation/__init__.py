"""World generation: controlled blocks, the synthetic Internet, scenarios.

``blocksim``
    The controlled single-block experiments of section 3.2.2 (detection
    accuracy versus number of diurnal addresses, phase spread, and uptime
    variance) over the *full* address-level pipeline.
``countries``
    The embedded country covariate table (GDP, electricity, allocation
    era, geography, Table 3/4 diurnal fractions).
``internet``
    The whole-Internet world generator: blocks with country, geography,
    AS, link technology, allocation date, and behaviour parameters.
``fastsim``
    Scale path: vectorized synthesis of per-round availability and
    adaptive-probe counts, feeding the *real* estimator and classifier.
``scenarios``
    Named dataset analogues (S51W, A12W, A12J/A12C, the USC-like campus).
"""

from repro.simulation.countries import COUNTRIES, Country, country_by_code
from repro.simulation.blocksim import (
    ControlledBlockConfig,
    accuracy_sweep,
    detection_accuracy,
    run_controlled_block,
)
from repro.simulation.internet import InternetWorld, WorldConfig, generate_world
from repro.simulation.fastsim import (
    FastMeasurement,
    adaptive_counts,
    apply_restart_bias,
    designed_mean_availability,
    measure_world,
    synthesize_availability,
)
from repro.simulation.scenarios import (
    CampusBlock,
    build_campus,
    schedule_for,
    survey_population,
)

__all__ = [
    "COUNTRIES",
    "CampusBlock",
    "ControlledBlockConfig",
    "Country",
    "FastMeasurement",
    "InternetWorld",
    "WorldConfig",
    "accuracy_sweep",
    "adaptive_counts",
    "apply_restart_bias",
    "build_campus",
    "country_by_code",
    "designed_mean_availability",
    "detection_accuracy",
    "generate_world",
    "measure_world",
    "run_controlled_block",
    "schedule_for",
    "survey_population",
    "synthesize_availability",
]

"""Synthetic whole-Internet world generation.

Builds a population of /24 blocks whose joint distribution over country,
geography, AS, link technology, allocation date, and diurnal behaviour
follows the country covariate table (:mod:`repro.simulation.countries`),
which in turn follows the paper's Tables 3 and 4.  The world is what the
global analyses (Figures 10–17, Tables 3–5) measure.

Design notes on how each paper effect arises:

* **country fractions** — each block's probability of being diurnal is its
  country's Table 3/4 fraction, modulated by relative risks for its link
  technology and allocation date and renormalized within the country, so
  country marginals are preserved while Figures 15 and 17 get their
  within-country structure;
* **phase vs longitude (Fig 14)** — a block wakes around 08:00 *local*
  time; local time comes from the block's own longitude in multi-timezone
  countries but from the national timezone elsewhere.  China spans ~30
  degrees on one timezone, which is exactly the paper's 100–140°E anomaly;
* **geolocation artifacts (Fig 12)** — the generated GeoDatabase resolves
  ~93% of blocks and places a few percent at the country centroid,
  reproducing MaxMind's Brazil/Russia/Australia centroid clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asn.ipasn import AsRecord, IpAsnTable
from repro.geo.geodb import GeoDatabase, GeoRecord
from repro.linktype.rdns import RdnsStyle
from repro.simulation.countries import COUNTRIES, Country

__all__ = ["InternetWorld", "WorldConfig", "generate_world"]

# Geographic spread of blocks inside a country (degrees of lat, lon); large
# countries get wide spreads, everyone else the default.
_COUNTRY_SPREAD = {
    "US": (6.0, 22.0),
    "CA": (4.0, 18.0),
    "RU": (6.0, 30.0),
    "CN": (7.0, 15.0),
    "BR": (7.0, 10.0),
    "AU": (5.0, 12.0),
    "IN": (5.0, 7.0),
    "MX": (3.0, 6.0),
    "ID": (2.5, 10.0),
    "KZ": (2.5, 7.0),
    "AR": (7.0, 4.0),
}
_DEFAULT_SPREAD = (1.2, 2.0)

# Countries whose clocks follow local longitude; everyone else runs on a
# single national timezone.  China's absence here is deliberate (Fig 14).
_MULTI_TZ = frozenset({"US", "CA", "RU", "BR", "AU", "MX", "ID", "KZ"})

# Relative risk of diurnal use per addressing scheme and access technology.
# Dynamic addressing strongly favours diurnal blocks; dial-up, servers and
# always-on fiber strongly disfavour them (Figure 17's ordering).
_ADDRESSING_RISK = {"dyn": 1.8, "dhcp": 1.35, "ppp": 1.5, "sta": 0.35, "none": 0.8}
_ACCESS_RISK = {
    "dsl": 1.0,
    "cable": 0.7,
    "dial": 0.08,   # the paper's surprise: dial-up is *not* diurnal (<3%)
    "fiber": 0.45,
    "wireless": 1.2,
    "srv": 0.15,
    "res": 0.85,
}

# Access-technology mixes at the development extremes; country mixes are
# interpolated by per-capita GDP.
_ACCESS_TECHS = ("dsl", "cable", "fiber", "dial", "wireless", "srv", "res")
_MIX_DEVELOPED = np.array([0.30, 0.30, 0.18, 0.01, 0.03, 0.08, 0.10])
_MIX_DEVELOPING = np.array([0.38, 0.12, 0.03, 0.10, 0.07, 0.05, 0.25])

_RDNS_STYLES = (RdnsStyle.DESCRIPTIVE, RdnsStyle.GENERIC, RdnsStyle.NONE)
_RDNS_WEIGHTS = np.array([0.50, 0.28, 0.22])


@dataclass(frozen=True)
class WorldConfig:
    """World-generation knobs.

    ``n_blocks`` scales the world down from the paper's 3.7M; country
    shares, not absolute counts, drive every reproduced statistic.
    """

    n_blocks: int = 20000
    seed: int = 0
    geo_coverage: float = 0.93
    centroid_fraction: float = 0.05
    geo_jitter_deg: float = 0.36  # MaxMind's claimed ~40 km accuracy
    max_diurnal_prob: float = 0.92

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError("n_blocks must be positive")
        if not 0.0 <= self.geo_coverage <= 1.0:
            raise ValueError("geo_coverage must be a fraction")


@dataclass
class InternetWorld:
    """A generated block population and its registry views.

    All per-block attributes are parallel arrays of length ``n_blocks``.
    """

    config: WorldConfig
    countries: tuple
    block_id: np.ndarray
    country_idx: np.ndarray
    lat: np.ndarray
    lon: np.ndarray
    asn: np.ndarray
    as_records: list
    alloc_year: np.ndarray
    access_tech: np.ndarray
    addressing: np.ndarray
    rdns_style: np.ndarray
    encode_mask: np.ndarray
    is_diurnal: np.ndarray
    n_active: np.ndarray
    a_high: np.ndarray
    a_low: np.ndarray
    onset_frac: np.ndarray
    uptime_frac: np.ndarray
    noise_sigma: np.ndarray
    lease_cpd: np.ndarray
    lease_amp: np.ndarray
    lease_phase: np.ndarray
    _geodb: GeoDatabase | None = field(default=None, repr=False)
    _ipasn: IpAsnTable | None = field(default=None, repr=False)

    @property
    def n_blocks(self) -> int:
        return len(self.block_id)

    def country_of(self, i: int) -> Country:
        return self.countries[self.country_idx[i]]

    def country_codes(self) -> np.ndarray:
        codes = np.array([c.code for c in self.countries], dtype=object)
        return codes[self.country_idx]

    def link_features(self, i: int) -> tuple:
        """Keyword features the operator of block ``i`` encodes in rDNS.

        Operators differ in verbosity: ``encode_mask`` selects whether the
        naming scheme carries both the addressing and access keywords
        (0), the addressing keyword only (1), or the access keyword only
        (2) — which is why only ~11% of the paper's blocks show multiple
        features.
        """
        addressing = (
            str(self.addressing[i])
            if self.addressing[i] in ("dyn", "dhcp", "ppp", "sta")
            else None
        )
        access = str(self.access_tech[i])
        if access not in ("dsl", "cable", "dial", "srv", "res", "wireless"):
            access = None
        mode = int(self.encode_mask[i])
        features = []
        if addressing and mode in (0, 1):
            features.append(addressing)
        if access and (mode in (0, 2) or not features):
            features.append(access)
        return tuple(features)

    def alloc_month(self) -> np.ndarray:
        """Allocation date in whole months since 1983-01 (Figure 15 axis)."""
        return ((self.alloc_year - 1983.0) * 12).astype(np.int64)

    def designed_diurnal_fraction(self, code: str) -> float:
        """The generated (truth) diurnal fraction of one country."""
        codes = self.country_codes()
        mask = codes == code
        if not mask.any():
            return float("nan")
        return float(self.is_diurnal[mask].mean())

    def build_geodb(self, rng: np.random.Generator | None = None) -> GeoDatabase:
        """MaxMind-like view: coverage gaps, jitter, centroid fallbacks."""
        if self._geodb is not None:
            return self._geodb
        rng = rng or np.random.default_rng(self.config.seed + 101)
        cfg = self.config
        records = {}
        for i in range(self.n_blocks):
            if rng.random() >= cfg.geo_coverage:
                continue
            country = self.country_of(i)
            if rng.random() < cfg.centroid_fraction:
                records[int(self.block_id[i])] = GeoRecord(
                    lat=country.lat,
                    lon=country.lon,
                    country=country.code,
                    city_precision=False,
                )
            else:
                records[int(self.block_id[i])] = GeoRecord(
                    lat=float(
                        np.clip(
                            self.lat[i] + rng.normal(0, cfg.geo_jitter_deg),
                            -89.9,
                            89.9,
                        )
                    ),
                    lon=float(
                        (self.lon[i] + rng.normal(0, cfg.geo_jitter_deg) + 180.0)
                        % 360.0
                        - 180.0
                    ),
                    country=country.code,
                    city_precision=True,
                )
        self._geodb = GeoDatabase(records)
        return self._geodb

    def build_ipasn(self) -> IpAsnTable:
        """Team-Cymru-like view: contiguous block ranges per AS."""
        if self._ipasn is not None:
            return self._ipasn
        table = IpAsnTable()
        if self.n_blocks:
            records_by_asn = {r.asn: r for r in self.as_records}
            start = 0
            for i in range(1, self.n_blocks + 1):
                if i == self.n_blocks or self.asn[i] != self.asn[start]:
                    asn = int(self.asn[start])
                    table.add_range(
                        int(self.block_id[start]),
                        i - start,
                        records_by_asn[asn],
                    )
                    start = i
        self._ipasn = table
        return self._ipasn


def _sample_lease_cpd(rng: np.random.Generator, n: int) -> np.ndarray:
    """Lease-cycle frequencies in cycles/day, away from 1 and 2 c/d.

    Mixture of slow (multi-day), intermediate and fast cycles; the bands
    around the diurnal fundamental and first harmonic are excluded so the
    competitor is never itself a diurnal signal.
    """
    choice = rng.random(n)
    slow = rng.uniform(0.3, 0.85, n)
    mid = rng.uniform(1.2, 1.8, n)
    fast = rng.uniform(2.3, 2.85, n)
    return np.where(choice < 0.3, slow, np.where(choice < 0.65, mid, fast))


def _isp_names(country: Country, n_isps: int) -> list[list[str]]:
    """WHOIS name variants per ISP; first ISP gets two AS name spellings."""
    stem = country.name.split(",")[0]
    templates = [
        [f"{stem} Telecom", f"{stem.upper().replace(' ', '-')}-TELECOM Backbone"],
        [f"{stem} CableVision Corp"],
        [f"Uni{country.code} Networks"],
        [f"{stem} Datacom Ltd."],
        [f"NetAccess {country.code} Inc."],
        [f"{stem} Regional ISP"],
    ]
    return templates[:n_isps]


def generate_world(config: WorldConfig | None = None) -> InternetWorld:
    """Generate a world; deterministic given the config seed."""
    config = config or WorldConfig()
    rng = np.random.default_rng(config.seed)

    total = sum(c.blocks for c in COUNTRIES)
    counts = np.array(
        [int(round(c.blocks / total * config.n_blocks)) for c in COUNTRIES]
    )
    # Rounding can drop or add a few blocks; patch the largest country.
    counts[int(np.argmax(counts))] += config.n_blocks - counts.sum()

    country_idx_parts = []
    asn_parts = []
    as_records: list[AsRecord] = []
    next_asn = 64500

    for ci, (country, n_c) in enumerate(zip(COUNTRIES, counts)):
        if n_c <= 0:
            continue
        country_idx_parts.append(np.full(n_c, ci, dtype=np.int64))
        n_isps = max(1, min(6, n_c // 800 + 1))
        name_sets = _isp_names(country, n_isps)
        weights = rng.dirichlet(np.full(n_isps, 2.0))
        isp_sizes = np.maximum((weights * n_c).astype(np.int64), 0)
        isp_sizes[0] += n_c - isp_sizes.sum()
        for names, size in zip(name_sets, isp_sizes):
            if size <= 0:
                continue
            isp_asns = []
            for name in names:
                as_records.append(AsRecord(next_asn, name, country.code))
                isp_asns.append(next_asn)
                next_asn += 1
            # Split the ISP's blocks across its AS numbers (usually 1-2).
            per_asn = np.array_split(np.arange(size), len(isp_asns))
            block_asns = np.concatenate(
                [
                    np.full(len(part), isp_asn, dtype=np.int64)
                    for part, isp_asn in zip(per_asn, isp_asns)
                ]
            )
            asn_parts.append(block_asns)

    country_idx = np.concatenate(country_idx_parts)
    asn = np.concatenate(asn_parts)
    n = len(country_idx)
    block_id = np.arange(0x01_00_00, 0x01_00_00 + n, dtype=np.int64)

    countries = tuple(COUNTRIES)
    gdp = np.array([countries[i].gdp_pc for i in country_idx])
    frac = np.array([countries[i].diurnal_frac for i in country_idx])
    mean_alloc = np.array([countries[i].mean_alloc_year for i in country_idx])
    first_alloc = np.array([countries[i].first_alloc_year for i in country_idx])
    c_lat = np.array([countries[i].lat for i in country_idx])
    c_lon = np.array([countries[i].lon for i in country_idx])
    spread = np.array(
        [
            _COUNTRY_SPREAD.get(countries[i].code, _DEFAULT_SPREAD)
            for i in country_idx
        ]
    )
    multi_tz = np.array(
        [countries[i].code in _MULTI_TZ for i in country_idx], dtype=bool
    )

    lat = np.clip(c_lat + rng.normal(0, 1, n) * spread[:, 0] / 2, -85.0, 85.0)
    lon = (c_lon + rng.normal(0, 1, n) * spread[:, 1] / 2 + 180.0) % 360.0 - 180.0

    alloc_year = np.clip(
        rng.normal(mean_alloc, 3.0, n), first_alloc, 2013.0
    )

    # Access technology: interpolate the mixes by development level.
    w = np.clip((gdp - 8000.0) / 22000.0, 0.0, 1.0)
    mixes = w[:, None] * _MIX_DEVELOPED + (1 - w[:, None]) * _MIX_DEVELOPING
    cum = np.cumsum(mixes, axis=1)
    draw = rng.random(n)[:, None]
    access_idx = (draw >= cum).sum(axis=1)
    access_tech = np.array(_ACCESS_TECHS, dtype=object)[access_idx]

    # Addressing: dynamic share rises with the country's diurnal fraction
    # and with allocation recency (post-exhaustion reuse pressure).
    p_dynamic = np.clip(
        0.30 + 0.55 * frac + 0.012 * (alloc_year - 2000.0), 0.05, 0.92
    )
    is_dynamic = rng.random(n) < p_dynamic
    addressing = np.full(n, "none", dtype=object)
    dyn_choice = rng.random(n)
    # Dynamic flavour follows access tech: PPP with DSL/dial, DHCP on cable.
    ppp_biased = np.isin(access_tech.astype(str), ("dsl", "dial"))
    cable = access_tech.astype(str) == "cable"
    addressing[is_dynamic & (dyn_choice < 0.5)] = "dyn"
    addressing[is_dynamic & (dyn_choice >= 0.5) & ppp_biased] = "ppp"
    addressing[is_dynamic & (dyn_choice >= 0.5) & cable] = "dhcp"
    addressing[is_dynamic & (addressing == "none")] = "dyn"
    static_named = ~is_dynamic & (rng.random(n) < 0.5)
    addressing[static_named] = "sta"

    # Diurnal assignment: country fraction x relative risks, renormalized
    # per country so the Table 3/4 marginals survive.
    r_addr = np.array([_ADDRESSING_RISK[a] for a in addressing])
    r_access = np.array([_ACCESS_RISK[a] for a in access_tech])
    r_alloc = np.clip(1.0 + 0.055 * (alloc_year - mean_alloc), 0.5, 1.7)
    risk = r_addr * r_access * r_alloc
    mean_risk = np.ones(n)
    for ci in np.unique(country_idx):
        mask = country_idx == ci
        mean_risk[mask] = risk[mask].mean()
    p_diurnal = np.clip(frac * risk / mean_risk, 0.0, config.max_diurnal_prob)
    is_diurnal = rng.random(n) < p_diurnal

    rdns_style = rng.choice(
        np.array(_RDNS_STYLES, dtype=object), size=n, p=_RDNS_WEIGHTS
    )
    # 0: encode both keywords, 1: addressing only, 2: access only.
    encode_mask = rng.choice(
        np.array([0, 1, 2], dtype=np.int8), size=n, p=[0.25, 0.35, 0.40]
    )

    # Behavioural parameters.
    n_active = np.clip(
        np.exp(rng.normal(4.2, 0.7, n)).astype(np.int64), 15, 250
    )
    a_high = rng.uniform(0.55, 0.90, n)
    # Infrastructure blocks (servers, static pools on always-on access)
    # run dense and quiet: availability near 1 with very little churn.
    # These are the blocks whose spectra are flat enough for the prober
    # restart artifact to dominate (Figure 10's ~4.3 cycles/day bump).
    infra = np.isin(access_tech.astype(str), ("srv", "fiber")) & ~is_diurnal
    a_high = np.where(infra, rng.uniform(0.93, 0.995, n), a_high)
    depth = rng.uniform(0.35, 0.80, n)
    a_low = np.where(is_diurnal, a_high * (1 - depth), a_high)
    # Non-diurnal blocks split into "weakly diurnal" ones — enough daily
    # ripple to top the spectrum at 1 cycle/day without the 2x strict
    # dominance (the paper's 25% relaxed vs 11% strict gap) — and flat
    # ones with only faint usage ripple.  Weak diurnality is more common
    # where strict diurnality is.
    p_weak = np.clip(0.12 + 0.62 * frac, 0.0, 0.65)
    weak = ~is_diurnal & ~infra & (rng.random(n) < p_weak)
    ripple = np.where(weak, rng.uniform(0.08, 0.22, n), rng.uniform(0.0, 0.03, n))
    # Infrastructure blocks barely breathe: their flat spectra are where
    # the prober-restart artifact can surface (Figure 10).
    ripple = np.where(infra, rng.uniform(0.0, 0.008, n), ripple)
    a_low = np.where(is_diurnal, a_low, a_high * (1 - ripple))

    # Competing periodicities: DHCP-lease-style cycles at frequencies away
    # from 1 and 2 cycles/day (the paper's section 4 "other periodicity"
    # discussion).  Weak blocks get a competitor comparable to their daily
    # signal, which is exactly what denies them the strict 2x dominance.
    daily_amp = (a_high - a_low) / 2.0
    lease_cpd = _sample_lease_cpd(rng, n)
    # Weak blocks keep their competitor below ~1.8 c/d: the short-term
    # EWMA attenuates faster cycles enough to hand dominance back to the
    # daily signal, which would wrongly re-qualify them as strict.
    lease_cpd[weak] = np.where(
        rng.random(n)[weak] < 0.45,
        rng.uniform(0.3, 0.85, n)[weak],
        rng.uniform(1.2, 1.8, n)[weak],
    )
    lease_amp = np.zeros(n)
    lease_amp[weak] = daily_amp[weak] * rng.uniform(0.8, 1.4, weak.sum())
    strict_mask_design = is_diurnal
    lease_amp[strict_mask_design] = daily_amp[strict_mask_design] * rng.uniform(
        0.0, 0.25, strict_mask_design.sum()
    )
    flat = ~is_diurnal & ~weak & ~infra
    has_flat_lease = flat & (rng.random(n) < 0.3)
    lease_amp[has_flat_lease] = a_high[has_flat_lease] * rng.uniform(
        0.01, 0.05, has_flat_lease.sum()
    )
    lease_phase = rng.uniform(-np.pi, np.pi, n)

    tz_lon = np.where(multi_tz, lon, c_lon)
    wake_local_h = rng.normal(8.0, 1.0, n)
    onset_frac = ((wake_local_h - tz_lon / 15.0) % 24.0) / 24.0
    uptime_frac = np.clip(rng.normal(13.5, 1.5, n), 6.0, 18.0) / 24.0
    noise_sigma = np.where(
        infra, rng.uniform(0.003, 0.012, n), rng.uniform(0.01, 0.04, n)
    )

    return InternetWorld(
        config=config,
        countries=countries,
        block_id=block_id,
        country_idx=country_idx,
        lat=lat,
        lon=lon,
        asn=asn,
        as_records=as_records,
        alloc_year=alloc_year,
        access_tech=access_tech,
        addressing=addressing,
        rdns_style=rdns_style,
        encode_mask=encode_mask,
        is_diurnal=is_diurnal,
        n_active=n_active,
        a_high=a_high,
        a_low=a_low,
        onset_frac=onset_frac,
        uptime_frac=uptime_frac,
        noise_sigma=noise_sigma,
        lease_cpd=lease_cpd,
        lease_amp=lease_amp,
        lease_phase=lease_phase,
    )

"""Country covariate table for the synthetic Internet world.

We do not have the CIA World Factbook, IANA registry, or MaxMind snapshots
the paper joins against, so this module embeds a country-level table
modelled on published 2013 values:

* ``blocks`` — /24 block counts follow the paper's Table 3 exactly for the
  21 countries it lists; other countries are apportioned so each region's
  total matches Table 4.
* ``diurnal_frac`` — the strict-diurnal fraction, again Table 3 where
  given; other countries get values consistent with their region's Table 4
  aggregate (e.g. Eastern Asia is 0.279 overall only because China's 0.498
  is diluted by Japan/Korea near 0.03).
* ``gdp_pc`` / ``elec_kwh_pc`` / ``users_per_host`` — per-capita GDP (PPP),
  per-capita electricity consumption, and the users-per-host ratio, rounded
  from 2012–2013 CIA Factbook values.
* ``first_alloc_year`` / ``mean_alloc_year`` — when the country's address
  space was first/typically allocated by IANA, modelled on registry
  history (legacy US/EU space in the 80s–90s, APNIC/LACNIC growth later).
* ``lat`` / ``lon`` — geographic centroid used by the geolocation model.

The joint distribution of these covariates with diurnalness is what the
Table 5 ANOVA and Figures 15/16 measure; embedding realistic marginals is
the substitution that preserves those results' shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.regions import region_of

__all__ = ["Country", "COUNTRIES", "country_by_code", "total_blocks"]


@dataclass(frozen=True)
class Country:
    """Static covariates of one country in the world model."""

    code: str
    name: str
    lat: float
    lon: float
    blocks: int
    diurnal_frac: float
    gdp_pc: float
    elec_kwh_pc: float
    users_per_host: float
    first_alloc_year: int
    mean_alloc_year: float

    @property
    def region(self) -> str:
        return region_of(self.code)

    @property
    def lon_radians(self) -> float:
        import math

        return math.radians(self.lon)


# fmt: off
_ROWS = [
    # code  name                    lat     lon    blocks  diurn   gdp    elec   u/h  first mean
    ("US", "United States",        39.8,  -98.6, 672104, 0.002, 50700, 12950, 0.5, 1984, 2004.1),
    ("CA", "Canada",               56.1, -106.3,  49612, 0.003, 43100, 15500, 0.9, 1985, 2000.4),
    ("DE", "Germany",              51.2,   10.4, 100000, 0.010, 39500,  7100, 4.0, 1991, 2000.2),
    ("FR", "France",               46.2,    2.2,  75000, 0.011, 35700,  7400, 4.8, 1989, 2000.3),
    ("NL", "Netherlands",          52.1,    5.3,  40000, 0.009, 43300,  6700, 0.5, 1992, 2000.7),
    ("BE", "Belgium",              50.5,    4.5,  20000, 0.012, 37800,  7700, 4.7, 1992, 2000.4),
    ("CH", "Switzerland",          46.8,    8.2,  25000, 0.008, 54800,  7800, 0.5, 1991, 1998.0),
    ("AT", "Austria",              47.5,   14.6,  15000, 0.013, 42600,  8400, 1.1, 1988, 2000.7),
    ("GB", "United Kingdom",       55.4,   -3.4,  80000, 0.012, 37300,  5500, 1.5, 1989, 2003.8),
    ("SE", "Sweden",               62.2,   17.6,  25000, 0.011, 40900, 13500, 5.7, 1986, 2002.9),
    ("NO", "Norway",               64.6,   11.5,  12000, 0.012, 55400, 23000, 0.5, 1989, 2003.8),
    ("FI", "Finland",              64.0,   26.0,  10000, 0.014, 35900, 15500, 0.5, 1988, 2001.5),
    ("DK", "Denmark",              56.0,    9.5,   7000, 0.015, 37800,  6000, 0.5, 1988, 2002.4),
    ("IT", "Italy",                42.8,   12.8,  60000, 0.110, 29600,  5200, 0.5, 1989, 2002.7),
    ("ES", "Spain",                40.2,   -3.6,  45000, 0.120, 30100,  5600, 0.5, 1986, 2000.0),
    ("PT", "Portugal",             39.6,   -8.0,  10000, 0.130, 22900,  4700, 2.3, 1989, 2003.9),
    ("GR", "Greece",               39.1,   22.0,  10000, 0.140, 23600,  5200, 0.5, 1992, 2004.1),
    ("RS", "Serbia",               44.2,   20.8,   4429, 0.393, 10600,  4300, 1.0, 1988, 2003.2),
    ("HR", "Croatia",              45.2,   15.4,   5500, 0.160, 17800,  3800, 13.3, 1987, 2004.9),
    ("RU", "Russia",               61.5,  105.3,  53048, 0.159, 18000,  6600, 2.7, 1991, 2003.0),
    ("UA", "Ukraine",              48.4,   31.2,  16575, 0.289,  7500,  3600, 1.2, 1992, 2004.5),
    ("BY", "Belarus",              53.7,   28.0,   1748, 0.512, 15900,  3500, 3.0, 1988, 2003.9),
    ("PL", "Poland",               51.9,   19.1,  40000, 0.090, 21100,  3900, 3.0, 1990, 1998.9),
    ("RO", "Romania",              45.9,   25.0,  15000, 0.120, 14400,  2500, 5.9, 1988, 2003.4),
    ("CZ", "Czech Republic",       49.8,   15.5,  12000, 0.070, 26300,  6300, 0.7, 1989, 2004.6),
    ("HU", "Hungary",              47.2,   19.5,   5000, 0.080, 19800,  3900, 2.1, 1991, 2004.2),
    ("BG", "Bulgaria",             42.7,   25.5,   3000, 0.150, 14400,  4600, 1.8, 1990, 2001.4),
    ("AM", "Armenia",              40.1,   45.0,   1075, 0.630,  5900,  1800, 2.1, 1993, 2005.3),
    ("GE", "Georgia",              42.3,   43.4,   1395, 0.546,  6000,  2300, 1.5, 1990, 2004.5),
    ("TR", "Turkey",               39.0,   35.2,  12000, 0.060, 15300,  2700, 4.1, 1987, 1999.2),
    ("IL", "Israel",               31.0,   34.9,   6000, 0.020, 32800,  6600, 2.9, 1991, 2002.8),
    ("SA", "Saudi Arabia",         24.0,   45.0,   3000, 0.080, 31300,  8700, 0.5, 1988, 2006.3),
    ("AE", "United Arab Emirates", 24.0,   54.0,   2100, 0.060, 49000, 11000, 0.6, 1990, 2002.1),
    ("KZ", "Kazakhstan",           48.0,   66.9,   3832, 0.400, 14100,  4900, 1.6, 1991, 2002.1),
    ("UZ", "Uzbekistan",           41.4,   64.6,    500, 0.410,  3800,  1600, 5.6, 1993, 2003.9),
    ("IN", "India",                20.6,   79.0,  36470, 0.225,  3900,   700, 3.2, 1989, 2004.0),
    ("PK", "Pakistan",             30.4,   69.3,   4000, 0.240,  3100,   450, 6.3, 1992, 2003.6),
    ("BD", "Bangladesh",           23.7,   90.4,   2000, 0.260,  2100,   300, 2.3, 1992, 2004.5),
    ("IR", "Iran",                 32.4,   53.7,   1500, 0.220, 12800,  2900, 1.1, 1990, 2000.7),
    ("LK", "Sri Lanka",             7.9,   80.8,    554, 0.210,  6500,   500, 2.7, 1989, 2001.1),
    ("CN", "China",                35.9,  104.2, 394244, 0.498,  9300,  3500, 7.9, 1991, 2003.7),
    ("JP", "Japan",                36.2,  138.3, 250000, 0.030, 37100,  7800, 0.7, 1988, 2002.5),
    ("KR", "South Korea",          35.9,  127.8,  80000, 0.050, 33200, 10200, 0.9, 1987, 2002.0),
    ("TW", "Taiwan",               23.7,  121.0,  28000, 0.060, 39600, 10300, 0.6, 1984, 2004.5),
    ("HK", "Hong Kong",            22.3,  114.2,   4000, 0.030, 52700,  6000, 1.0, 1990, 2001.9),
    ("MN", "Mongolia",             46.9,  103.8,   1108, 0.450,  5900,  1600, 6.1, 1987, 2005.7),
    ("TH", "Thailand",             15.9,  101.0,  10986, 0.336, 10300,  2400, 2.0, 1989, 2004.6),
    ("MY", "Malaysia",              4.2,  102.0,   9747, 0.247, 17200,  4300, 1.4, 1989, 2001.9),
    ("PH", "Philippines",          12.9,  121.8,   5721, 0.239,  4500,   650, 1.7, 1987, 2001.2),
    ("VN", "Vietnam",              14.1,  108.3,   8197, 0.183,  3600,  1300, 0.8, 1994, 2003.3),
    ("ID", "Indonesia",            -0.8,  113.9,   7617, 0.166,  5100,   750, 1.8, 1986, 2002.8),
    ("SG", "Singapore",             1.35, 103.8,   6617, 0.030, 62400,  8400, 0.5, 1990, 2002.7),
    ("BR", "Brazil",              -14.2,  -51.9,  79095, 0.185, 12100,  2500, 2.4, 1988, 2004.2),
    ("AR", "Argentina",           -38.4,  -63.6,  20382, 0.339, 18400,  3000, 0.9, 1992, 2005.3),
    ("CO", "Colombia",              4.6,  -74.3,   9379, 0.261, 11000,  1200, 3.3, 1991, 2000.7),
    ("PE", "Peru",                 -9.2,  -75.0,   4600, 0.401, 10900,  1200, 2.0, 1995, 2003.9),
    ("CL", "Chile",               -35.7,  -71.5,  12000, 0.180, 19100,  3900, 1.6, 1990, 2002.9),
    ("VE", "Venezuela",             6.4,  -66.6,   5000, 0.230, 13600,  3300, 0.8, 1988, 2004.5),
    ("EC", "Ecuador",              -1.8,  -78.2,   3037, 0.250, 10600,  1300, 5.1, 1993, 2004.0),
    ("MX", "Mexico",               23.6, -102.6,  40000, 0.120, 15600,  2100, 4.3, 1990, 2002.8),
    ("SV", "El Salvador",          13.8,  -88.9,   1145, 0.311,  7600,   900, 0.6, 1987, 2001.9),
    ("GT", "Guatemala",            15.8,  -90.2,   1500, 0.200,  5300,   550, 2.7, 1993, 1999.1),
    ("CR", "Costa Rica",            9.7,  -83.8,   1200, 0.110, 12900,  1900, 8.7, 1993, 2003.0),
    ("PA", "Panama",                8.5,  -80.8,    799, 0.120, 16500,  1900, 2.1, 1988, 2004.3),
    ("CU", "Cuba",                 21.5,  -77.8,    300, 0.050, 10200,  1300, 0.8, 1993, 2000.8),
    ("DO", "Dominican Republic",   18.7,  -70.2,    700, 0.020,  9700,  1500, 0.5, 1987, 1998.3),
    ("JM", "Jamaica",              18.1,  -77.3,    400, 0.015,  9000,  2800, 8.2, 1989, 1997.5),
    ("PR", "Puerto Rico",          18.2,  -66.4,    600, 0.008, 16300,  5000, 0.5, 1987, 2003.1),
    ("TT", "Trinidad and Tobago",  10.7,  -61.2,    174, 0.010, 20400,  6400, 0.5, 1989, 1999.6),
    ("MA", "Morocco",              31.8,   -7.1,   2115, 0.185,  5400,   900, 6.7, 1994, 2002.3),
    ("EG", "Egypt",                26.8,   30.8,   5000, 0.090,  6600,  1700, 4.0, 1989, 2002.2),
    ("DZ", "Algeria",              28.0,    1.7,   2000, 0.100,  7500,  1100, 2.3, 1993, 2003.8),
    ("TN", "Tunisia",              33.9,    9.6,    869, 0.080,  9900,  1400, 3.0, 1994, 2000.5),
    ("ZA", "South Africa",        -30.6,   22.9,  10000, 0.010, 11500,  4400, 1.8, 1992, 1998.6),
    ("NA", "Namibia",             -22.9,   18.5,    700, 0.012,  8200,  1700, 3.5, 1989, 2001.7),
    ("BW", "Botswana",            -22.3,   24.7,    555, 0.014, 16400,  1600, 1.9, 1989, 1999.7),
    ("AU", "Australia",           -25.3,  133.8,  22000, 0.035, 43000, 10700, 1.5, 1992, 1999.3),
    ("NZ", "New Zealand",         -40.9,  174.9,   5000, 0.030, 30400,  9400, 1.5, 1987, 2003.0),
    ("FJ", "Fiji",                -17.7,  178.1,    206, 0.060,  4900,   900, 4.1, 1987, 1999.1),
]
# fmt: on

COUNTRIES: tuple = tuple(Country(*row) for row in _ROWS)

_BY_CODE = {c.code: c for c in COUNTRIES}


def country_by_code(code: str) -> Country:
    """Look up a country by ISO code; raises KeyError when unknown."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError:
        raise KeyError(f"no country {code!r} in the world model") from None


def total_blocks() -> int:
    """World total of modelled /24 blocks (paper scale: ~2.5M geolocated)."""
    return sum(c.blocks for c in COUNTRIES)

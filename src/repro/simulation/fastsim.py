"""Scale path: vectorized measurement of a generated world.

Address-level simulation of millions of blocks is out of laptop scope, so
the global analyses use a statistically equivalent shortcut:

1. synthesize each block's per-round *true availability* directly from its
   behaviour parameters (trapezoidal daily window plus AR(1) noise);
2. draw the adaptive prober's per-round counts from that availability —
   stop-on-first-positive probing of a block with per-address availability
   ``A`` sends ``t = min(G, 15)`` probes where ``G`` is geometric(A), and
   returns ``p = 1`` iff a probe succeeded (the distribution the real
   prober exhibits; tested against it);
3. feed those counts through the **real** EWMA estimator
   (:func:`repro.core.estimator.estimate_series`) and the **real**
   spectral classifier (:func:`repro.core.classify.classify_many`).

The contribution code therefore runs unmodified at scale; only the
substrate beneath it is summarized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ClassifierConfig, classify_many
from repro.core.estimator import EstimatorConfig, estimate_series
from repro.core.timeseries import trim_to_midnight
from repro.probing.rounds import RoundSchedule
from repro.simulation.internet import InternetWorld

__all__ = [
    "FastMeasurement",
    "adaptive_counts",
    "apply_restart_bias",
    "designed_mean_availability",
    "measure_world",
    "synthesize_availability",
]


def synthesize_availability(
    world: InternetWorld,
    indices: np.ndarray,
    times: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """True per-round availability for the selected blocks.

    The daily shape is a trapezoid between ``a_low`` and ``a_high``: the
    block wakes at ``onset_frac`` of the UTC day, ramps up over ~90
    minutes, stays high for ``uptime_frac`` of the day, and ramps back
    down.  AR(1) noise models address-level churn.
    """
    indices = np.asarray(indices, dtype=np.intp)
    day_frac = (times / 86400.0) % 1.0
    x = (day_frac[None, :] - world.onset_frac[indices][:, None]) % 1.0
    up = world.uptime_frac[indices][:, None]
    tau = 0.0625  # 90-minute ramps
    window = np.clip(x / tau, 0.0, 1.0) - np.clip((x - up) / tau, 0.0, 1.0)
    lo = world.a_low[indices][:, None]
    hi = world.a_high[indices][:, None]
    a = lo + (hi - lo) * window

    # Competing lease-style periodicity (see internet._sample_lease_cpd).
    lease_amp = world.lease_amp[indices][:, None]
    if np.any(lease_amp > 0):
        cpd = world.lease_cpd[indices][:, None]
        phase = world.lease_phase[indices][:, None]
        a = a + lease_amp * np.cos(
            2 * np.pi * cpd * times[None, :] / 86400.0 + phase
        )

    # AR(1) noise, one chain per block.
    from scipy.signal import lfilter

    sigma = world.noise_sigma[indices][:, None]
    shocks = rng.normal(0.0, 1.0, a.shape) * sigma * 0.55
    phi = 0.7
    noise = lfilter([1.0], [1.0, -phi], shocks, axis=1)
    return np.clip(a + noise, 0.005, 0.995)


def apply_restart_bias(
    availability: np.ndarray,
    restart_rounds: np.ndarray,
    rng: np.random.Generator,
    bias_sigma: float = 0.13,
    decay: tuple = (1.0, 0.7, 0.45, 0.25),
) -> np.ndarray:
    """Perturb availability after each prober restart (Figure 10 artifact).

    A restarted prober re-walks its address permutation from the top, so
    the first few rounds after a restart over/under-sample particular
    addresses.  Each block gets a fixed signed bias that decays over a few
    rounds — a pulse train at the restart frequency (~4.3 cycles/day for
    the 5.5-hour A_12w policy) that dominates the spectrum only of blocks
    whose genuine daily signal is nearly flat, the paper's ~3%.
    """
    if len(restart_rounds) == 0:
        return availability
    out = np.array(availability, dtype=np.float64, copy=True)
    bias = rng.normal(0.0, bias_sigma, size=(out.shape[0], 1))
    n_rounds = out.shape[1]
    for offset, weight in enumerate(decay):
        rounds = restart_rounds + offset
        rounds = rounds[rounds < n_rounds]
        out[:, rounds] += bias * weight
    return np.clip(out, 0.005, 0.995)


def adaptive_counts(
    availability: np.ndarray,
    rng: np.random.Generator,
    max_probes: int = 15,
    missing_fraction: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw per-round (positives, totals) as the adaptive prober would.

    With per-address availability ``A``, the walk hits a responsive
    address after a geometric number of probes; the round stops there or
    at the 15-probe cap.  ``missing_fraction`` of rounds are dropped
    (t = 0), matching the ~5% missing/duplicate rate the cleaning stage
    sees in real data.
    """
    a = np.asarray(availability, dtype=np.float64)
    u = rng.random(a.shape)
    with np.errstate(divide="ignore", invalid="ignore"):
        failures = np.floor(np.log(u) / np.log1p(-a))
    failures = np.where(np.isfinite(failures), failures, np.inf)
    totals = np.minimum(failures + 1, max_probes).astype(np.int16)
    positives = (failures + 1 <= max_probes).astype(np.int16)
    if missing_fraction > 0:
        missing = rng.random(a.shape) < missing_fraction
        totals[missing] = 0
        positives[missing] = 0
    return positives, totals


@dataclass
class FastMeasurement:
    """World-scale measurement output (parallel to the world's blocks).

    ``labels`` uses the classifier's codes: 0 non-diurnal, 1 relaxed,
    2 strict.  ``phases`` are the 1-cycle/day FFT phases in radians.
    """

    labels: np.ndarray
    phases: np.ndarray
    dominant_cycles_per_day: np.ndarray
    diurnal_amplitude: np.ndarray
    mean_availability: np.ndarray
    schedule: RoundSchedule

    @property
    def n_blocks(self) -> int:
        return len(self.labels)

    @property
    def strict_mask(self) -> np.ndarray:
        return self.labels == 2

    @property
    def diurnal_mask(self) -> np.ndarray:
        return self.labels >= 1

    def fraction_strict(self) -> float:
        return float(self.strict_mask.mean()) if self.n_blocks else 0.0

    def fraction_diurnal(self) -> float:
        return float(self.diurnal_mask.mean()) if self.n_blocks else 0.0


def designed_mean_availability(world: InternetWorld) -> np.ndarray:
    """Long-run mean availability implied by each block's parameters."""
    lo, hi, up = world.a_low, world.a_high, world.uptime_frac
    return lo + (hi - lo) * up


def measure_world(
    world: InternetWorld,
    schedule: RoundSchedule,
    estimator: EstimatorConfig | None = None,
    classifier: ClassifierConfig | None = None,
    chunk_size: int = 2000,
    missing_fraction: float = 0.05,
    seed: int | None = None,
    history_error: float = 0.08,
) -> FastMeasurement:
    """Measure every block of a world through the real estimator+classifier.

    Work proceeds in chunks of ``chunk_size`` blocks to bound memory
    (each chunk holds two (chunk, n_rounds) float arrays).

    Estimator state is seeded per block from the block's true long-run
    availability plus Gaussian ``history_error`` — the deployment's
    "historical data over several years", which is usually close but "may
    be off significantly" for changed blocks (section 2.1.1).
    """
    estimator = estimator or EstimatorConfig()
    classifier = classifier or ClassifierConfig()
    seed = world.config.seed + 7_777 if seed is None else seed
    times = schedule.times()
    trim = trim_to_midnight(times, schedule.round_s)
    restarts = schedule.restart_rounds()

    n = world.n_blocks
    labels = np.zeros(n, dtype=np.int8)
    phases = np.zeros(n)
    dominant = np.zeros(n)
    amplitude = np.zeros(n)
    mean_avail = np.zeros(n)

    children = np.random.SeedSequence(seed).spawn(
        (n + chunk_size - 1) // chunk_size
    )
    for chunk_no, start in enumerate(range(0, n, chunk_size)):
        idx = np.arange(start, min(start + chunk_size, n))
        rng = np.random.default_rng(children[chunk_no])
        a_true = synthesize_availability(world, idx, times, rng)
        a_probed = apply_restart_bias(a_true, restarts, rng)
        positives, totals = adaptive_counts(
            a_probed, rng, missing_fraction=missing_fraction
        )
        a_init = np.clip(
            designed_mean_availability(world)[idx]
            + rng.normal(0.0, history_error, len(idx)),
            0.02,
            0.99,
        )
        series = estimate_series(
            positives,
            totals,
            estimator,
            restart_rounds=restarts,
            initial_availability=a_init,
        )
        batch = classify_many(
            series.a_short[:, trim], schedule.round_s, classifier
        )
        labels[idx] = batch.labels
        phases[idx] = batch.phases
        dominant[idx] = batch.dominant_cycles_per_day
        amplitude[idx] = batch.diurnal_amplitude
        mean_avail[idx] = a_true.mean(axis=1)

    return FastMeasurement(
        labels=labels,
        phases=phases,
        dominant_cycles_per_day=dominant,
        diurnal_amplitude=amplitude,
        mean_availability=mean_avail,
        schedule=schedule,
    )

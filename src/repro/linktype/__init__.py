"""Link-technology substrate: reverse-DNS synthesis and keyword inference.

The paper infers each block's last-mile technology from reverse DNS names
(section 2.3.3): substring-match 16 keywords against every address's name,
drop the 7 keywords dominant in fewer than 1000 blocks, suppress minor
features below 1/15th of the block's most frequent feature, and label the
block with what remains.  ``keywords`` reimplements that classifier;
``rdns`` synthesizes ISP-style reverse names for simulated blocks so the
classifier has realistic input.
"""

from repro.linktype.keywords import (
    ACTIVE_KEYWORDS,
    ALL_KEYWORDS,
    DISCARDED_KEYWORDS,
    BlockLinkType,
    classify_block_names,
    match_features,
)
from repro.linktype.rdns import RdnsStyle, synthesize_block_names

__all__ = [
    "ACTIVE_KEYWORDS",
    "ALL_KEYWORDS",
    "BlockLinkType",
    "DISCARDED_KEYWORDS",
    "RdnsStyle",
    "classify_block_names",
    "match_features",
    "synthesize_block_names",
]

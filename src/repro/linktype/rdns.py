"""Reverse-DNS name synthesis for simulated blocks.

Real ISPs name customer addresses in recognizable patterns
(``dsl-dyn-27-186-9-14.pool.example.net``); others use opaque names or no
PTR records at all.  The synthesizer produces those three regimes so the
keyword classifier sees a realistic mix: in the paper only 46.3% of blocks
expose any analyzable feature.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["RdnsStyle", "synthesize_block_names"]


class RdnsStyle(Enum):
    """How an operator names its reverse zone."""

    DESCRIPTIVE = "descriptive"  # technology keywords in names
    GENERIC = "generic"          # names exist but carry no keywords
    NONE = "none"                # no PTR records

# Keyword-free host labels used by GENERIC operators (and mixed into
# DESCRIPTIVE blocks for infrastructure addresses).
_GENERIC_LABELS = ("host", "ip", "node", "unknown", "addr")


def _descriptive_name(
    features: tuple, octet: int, domain: str, rng: np.random.Generator
) -> str:
    tokens = list(features)
    if len(tokens) > 1 and rng.random() < 0.3:
        # Some operators encode only one of the block's technologies.
        tokens = [tokens[int(rng.integers(len(tokens)))]]
    stem = "-".join(tokens)
    return f"{stem}-{octet:03d}.{domain}"


def _generic_name(octet: int, domain: str, rng: np.random.Generator) -> str:
    label = _GENERIC_LABELS[int(rng.integers(len(_GENERIC_LABELS)))]
    return f"{label}-{octet:03d}.{domain}"


def synthesize_block_names(
    features: tuple,
    style: RdnsStyle,
    rng: np.random.Generator,
    domain: str = "example-isp.net",
    n: int = 256,
    ptr_coverage: float = 0.9,
    noise_fraction: float = 0.03,
) -> list:
    """Reverse names for one block's ``n`` addresses.

    ``features`` are the technology keywords the operator encodes (e.g.
    ``("dyn", "dsl")``).  ``ptr_coverage`` is the fraction of addresses
    with PTR records; ``noise_fraction`` of named addresses get generic or
    infrastructure names instead of the descriptive pattern, mimicking the
    routers-in-a-DSL-pool noise the 1/15 suppression rule exists for.
    Returns a list of names with None for unnamed addresses.
    """
    if style is RdnsStyle.NONE:
        return [None] * n
    names: list = []
    for octet in range(n):
        if rng.random() >= ptr_coverage:
            names.append(None)
            continue
        if style is RdnsStyle.GENERIC or not features:
            names.append(_generic_name(octet, domain, rng))
        elif rng.random() < noise_fraction:
            # Infrastructure addresses: routers/gateways inside the block.
            infra = ("rtr", "gw")[int(rng.integers(2))]
            names.append(f"{infra}-{octet:03d}.{domain}")
        else:
            names.append(_descriptive_name(features, octet, domain, rng))
    return names

"""The paper's 16-keyword link-type classifier (section 2.3.3).

A block is a vector of up to 256 reverse names; each name non-exclusively
matches keywords by substring (``dhcp-dialup-001.example.com`` is both DHCP
and dial-up).  Features occurring less than 1/15th as often as the block's
most frequent feature are suppressed, and the block is labelled with every
remaining feature.  Seven keywords were dominant in fewer than 1000 blocks
of A_12w and are discarded from analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ACTIVE_KEYWORDS",
    "ALL_KEYWORDS",
    "DISCARDED_KEYWORDS",
    "BlockLinkType",
    "classify_block_names",
    "match_features",
]

# The paper's 16 keywords; asterisked ones in the paper are discarded.
ALL_KEYWORDS = (
    "sta", "dyn", "srv", "rtr", "gw", "dhcp", "ppp", "dsl",
    "dial", "cable", "ded", "res", "client", "sql", "wireless", "wifi",
)

DISCARDED_KEYWORDS = frozenset(
    {"rtr", "gw", "ded", "client", "sql", "wireless", "wifi"}
)

ACTIVE_KEYWORDS = tuple(k for k in ALL_KEYWORDS if k not in DISCARDED_KEYWORDS)

# The paper's suppression threshold: features below 1/15th of the block's
# most frequent feature are noise (a lone router name in a DSL pool).
SUPPRESSION_RATIO = 1.0 / 15.0


def match_features(name: str | None) -> frozenset:
    """Keywords matching one reverse name (non-exclusive substring match)."""
    if not name:
        return frozenset()
    lowered = name.lower()
    return frozenset(k for k in ALL_KEYWORDS if k in lowered)


@dataclass
class BlockLinkType:
    """Link-type classification of one block.

    Attributes:
        counts: addresses matching each keyword, before suppression.
        labels: surviving features after minor-feature suppression,
            restricted to the nine analyzable keywords.
        n_named: addresses that had a reverse name at all.
    """

    counts: dict
    labels: frozenset
    n_named: int

    @property
    def has_feature(self) -> bool:
        """The paper's "some feature" criterion (46.3% of A_12w blocks)."""
        return bool(self.labels)

    @property
    def multi_feature(self) -> bool:
        """Blocks with multiple surviving features (11.4% in A_12w)."""
        return len(self.labels) > 1


def classify_block_names(
    names: list,
    suppression_ratio: float = SUPPRESSION_RATIO,
    keep_discarded: bool = False,
) -> BlockLinkType:
    """Classify one block from its (up to 256) reverse names.

    ``names`` entries may be None for addresses without a PTR record.
    Set ``keep_discarded`` to retain the seven under-represented keywords,
    e.g. when recomputing the paper's "dominant in under 1000 blocks" rule.
    """
    counts: dict = {k: 0 for k in ALL_KEYWORDS}
    n_named = 0
    for name in names:
        features = match_features(name)
        if name:
            n_named += 1
        for feature in features:
            counts[feature] += 1

    strongest = max(counts.values()) if counts else 0
    threshold = strongest * suppression_ratio
    surviving = {
        k for k, c in counts.items() if c > 0 and c >= threshold
    }
    if not keep_discarded:
        surviving -= DISCARDED_KEYWORDS
    return BlockLinkType(
        counts={k: c for k, c in counts.items() if c > 0},
        labels=frozenset(surviving),
        n_named=n_named,
    )

"""Command-line report generator: every paper table from one world.

Usage::

    python -m repro.report --blocks 8000 --days 14 --out report/

Generates and measures one world, runs every global analysis plus the
survey validations, writes each artifact's text table under ``--out``,
and prints a one-line summary per artifact.  This is the "regenerate the
paper" entry point for people who do not want to drive pytest-benchmark.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["build_parser", "main", "run_report"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures as text.",
    )
    parser.add_argument(
        "--blocks", type=int, default=8000,
        help="world size in /24 blocks (default 8000; paper: 3.7M)",
    )
    parser.add_argument(
        "--days", type=float, default=14.0,
        help="observation length in days (default 14; A12W used 35)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="world / probing seed"
    )
    parser.add_argument(
        "--survey-blocks", type=int, default=80,
        help="survey population for the section 3 validations",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("report"),
        help="directory for the generated text tables",
    )
    parser.add_argument(
        "--skip-validation", action="store_true",
        help="skip the (slower) address-level section 3 validations",
    )
    return parser


def run_report(args: argparse.Namespace, out=sys.stdout) -> Path:
    """Run all analyses; returns the output directory."""
    from repro import analysis

    def emit(line: str) -> None:
        print(line, file=out, flush=True)

    args.out.mkdir(parents=True, exist_ok=True)

    def save(name: str, text: str, headline: str) -> None:
        (args.out / f"{name}.txt").write_text(text + "\n")
        emit(f"  {name:<24} {headline}")

    emit(
        f"measuring a {args.blocks}-block world over {args.days:g} days "
        f"(seed {args.seed})…"
    )
    started = time.time()
    study = analysis.GlobalStudy.run(
        n_blocks=args.blocks, seed=args.seed, days=args.days
    )
    m = study.measurement
    emit(
        f"done in {time.time() - started:.0f}s: "
        f"{m.fraction_strict():.1%} strict, "
        f"{m.fraction_diurnal():.1%} either (paper: 11% / 25%)"
    )

    # Scale the paper's >=1000-block country cutoff to the world size.
    min_blocks = max(10, args.blocks // 200)
    table = analysis.run_country_table(study=study, min_blocks=min_blocks)
    save("tab3_countries", table.format_table(20),
         f"CN {table.row_of('CN').fraction_diurnal:.3f} "
         f"US {table.row_of('US').fraction_diurnal:.3f}")
    regions = analysis.run_region_table(study=study)
    save("tab4_regions", regions.format_table(),
         f"{len(regions.rows)} regions")
    scatter = analysis.run_gdp_scatter(table=table)
    save("fig16_gdp_scatter", scatter.format_series(),
         f"r = {scatter.correlation():+.3f}")
    try:
        anova = analysis.run_economics_anova(table=table)
        save("tab5_anova", anova.format_table(),
             f"gdp p = {anova.p_of('gdp'):.2g}")
    except ValueError as error:
        save("tab5_anova",
             f"ANOVA not identifiable at this world size: {error}\n"
             f"(rerun with more blocks; {len(table.rows)} countries "
             f"cleared the {min_blocks}-block floor)",
             "skipped (too few countries)")
    maps = analysis.run_world_maps(study=study)
    save("fig12_13_maps", maps.format_series(),
         f"{maps.geolocated_fraction:.0%} geolocated")
    phase = analysis.run_phase_longitude(study=study)
    save("fig14_phase_longitude", phase.format_series(),
         f"corr = {phase.correlation():.3f}")
    alloc = analysis.run_allocation_trend(study=study)
    save("fig15_allocation", alloc.format_series(),
         f"slope = {alloc.slope_percent_per_month():+.3f}%/mo")
    freq = analysis.run_frequency_cdf(study=study)
    save("fig10_freq_cdf", freq.format_series(),
         f"{freq.fraction_daily():.1%} at 1 c/d")
    links = analysis.run_linktype_study(
        study=study, max_classified=min(args.blocks, 6000)
    )
    save("fig17_linktype", links.format_table(),
         f"dyn {links.fraction_of('dyn'):.2f}")
    cross = analysis.run_cross_site(study=study)
    save("tab2_cross_site", cross.format_table(),
         f"{cross.strict_overlap_fraction():.0%} strict overlap")
    census = analysis.run_census(study=study)
    save("app_census", census.format_series(),
         f"worst error {census.worst_snapshot_error():.2%} -> "
         f"{census.worst_corrected_error():.2%}")

    if not args.skip_validation:
        emit("running address-level section 3 validations…")
        avail = analysis.run_availability_validation(
            n_blocks=args.survey_blocks, seed=args.seed
        )
        save("fig04_05_availability", avail.format_table(),
             f"corr = {avail.correlation_short:.3f}")
        diurnal = analysis.run_diurnal_validation(
            n_blocks=args.survey_blocks, seed=args.seed
        )
        save("tab1_validation", diurnal.format_table(),
             f"accuracy = {diurnal.accuracy:.1%}")
        outages = analysis.run_outage_validation(n_blocks=20, days=5.0)
        save("outage_validation", outages.format_table(),
             f"{outages.detection_rate:.0%} detected")

    emit(f"report written to {args.out}/")
    return args.out


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    run_report(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""ServiceRunner: shards, routing, supervision, drain — the service core.

The runner is everything between the HTTP layer and the shard worker
processes:

* **placement** — a seeded :class:`~repro.serve.ring.HashRing` maps
  every block id to the shard that owns its streaming state.  The ring
  is fixed at start; a dead shard is marked *unhealthy* (its keys
  answer 503) rather than remapped, because its state lives in its
  journal and moving the keys would strand it.  Respawn + replay +
  rejoin restores the same placement with the same state.
* **supervision** — a daemon thread checks process liveness and
  heartbeat staleness every cycle using the
  :class:`~repro.core.supervisor.SlotSupervisor` policy: a dead or
  wedged shard is reaped, its replacement is paced by the shared
  :class:`~repro.core.retry.RetryPolicy`, recovers by journal replay
  *before* reporting ready, and only then rejoins the ring.  Alert
  rules are evaluated over the live fleet aggregate each cycle.
* **telemetry** — every shard reply carries a
  :class:`~repro.obs.distributed.TelemetryDelta`; the runner folds
  them into a :class:`~repro.obs.distributed.FleetView`, so ``GET
  /metrics`` serves one aggregate registry (shards + the runner's own
  service metrics) through the existing Prometheus/JSON exporters.
* **graceful drain** — :meth:`stop` (the SIGTERM path) first stops the
  supervision thread (so the shutdown is not "healed"), then drains
  every shard in the documented order — admission queue pumped dry,
  due windows closed, journal flushed and fsynced — writes a final
  :class:`~repro.obs.export.RunManifest` checkpoint next to the
  journals, and only then tells workers to exit.  A clean stop never
  leaves a torn journal tail.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.retry import RetryPolicy
from repro.core.supervisor import SlotSupervisor
from repro.obs.alerts import AlertEngine
from repro.obs.distributed import FleetView
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.export import RunManifest, json_snapshot, prometheus_text
from repro.obs.registry import NULL_REGISTRY, histogram_quantile
from repro.obs.tracing import NULL_TRACER
from repro.serve.ring import HashRing
from repro.serve.shard import (
    ShardClient,
    ShardConfig,
    ShardDownError,
    ShardTimeoutError,
    _shard_main,
)
from repro.stream.engine import StreamConfig
from repro.stream.overload import OverloadConfig

__all__ = [
    "ServiceConfig",
    "ServiceRunner",
    "ShardDownError",
    "ShardTimeoutError",
]


@dataclass(frozen=True)
class ServiceConfig:
    """The always-on service's knobs.

    Attributes:
        stream: engine configuration shared by every shard (verdicts
            must not depend on placement).
        journal_dir: directory holding one write-ahead journal per
            shard (``shard-NN.journal``) plus the final manifest.
        n_shards: shard worker processes.
        overload: per-shard admission queue bounds and shed policy.
        ring_replicas: virtual points per shard on the hash ring.
        seed: ring placement seed (also the default overload seed).
        shard_deadline_s: heartbeat staleness past which a live-but-
            wedged shard is reaped; ``None`` disables (death is still
            detected via the process sentinel).
        heartbeat_interval_s: supervision poll period.
        stable_after_s: seconds a respawned shard must survive before
            its respawn streak resets (crash-looping shards keep
            backing off); defaults to ``4 × shard_deadline_s`` or 1 s.
        respawn_backoff: pacing for consecutive respawns of one shard.
        request_timeout_s: per-RPC answer deadline.
        max_batch: largest observation batch per ingest RPC (bigger
            router batches are chunked, keeping worker heartbeats
            fresh and pipe frames bounded).
        pump_budget: see :class:`~repro.serve.shard.ShardConfig`.
        journal_sync_every: see :class:`~repro.serve.shard.ShardConfig`.
        retry_after_s: the Retry-After hint served with 429/503.
        telemetry: instrument shards and ship deltas.
        mp_context: multiprocessing start method.
    """

    stream: StreamConfig
    journal_dir: str | Path
    n_shards: int = 2
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    ring_replicas: int = 128
    seed: int = 0
    shard_deadline_s: float | None = 5.0
    heartbeat_interval_s: float = 0.05
    stable_after_s: float | None = None
    respawn_backoff: RetryPolicy = field(default_factory=RetryPolicy)
    request_timeout_s: float = 30.0
    max_batch: int = 4096
    pump_budget: int = 2048
    journal_sync_every: int | None = 256
    retry_after_s: float = 1.0
    telemetry: bool = True
    mp_context: str = "fork"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")

    @property
    def settle_s(self) -> float:
        """Healthy-streak reset horizon (see ``stable_after_s``)."""
        if self.stable_after_s is not None:
            return self.stable_after_s
        if self.shard_deadline_s is not None:
            return 4.0 * self.shard_deadline_s
        return 1.0

    def shard_config(self) -> ShardConfig:
        return ShardConfig(
            stream=self.stream,
            overload=self.overload,
            journal_sync_every=self.journal_sync_every,
            pump_budget=self.pump_budget,
            telemetry=self.telemetry,
        )

    def journal_path(self, shard_id: int) -> Path:
        return Path(self.journal_dir) / f"shard-{shard_id:02d}.journal"


class _Slot:
    """Supervisor-side state for one shard slot."""

    __slots__ = (
        "shard_id",
        "client",
        "healthy",
        "paused",
        "respawns",
        "respawned_at",
        "settled",
        "lock",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.client: ShardClient | None = None
        self.healthy = False
        self.paused = False
        self.respawns = 0
        self.respawned_at = 0.0
        self.settled = True
        self.lock = threading.Lock()


class _ServiceMetrics:
    """Pre-bound runner metrics (null registry by default)."""

    __slots__ = ("enabled", "ingested", "rejected_bp", "rejected_down",
                 "queries", "respawns_crashed", "respawns_hung",
                 "shards", "unhealthy", "request_p99", "error_ratio")

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.ingested = registry.counter("service_ingest_observations_total")
        self.rejected_bp = registry.counter(
            "service_ingest_rejected_total", reason="backpressure"
        )
        self.rejected_down = registry.counter(
            "service_ingest_rejected_total", reason="shard_down"
        )
        self.queries = registry.counter("service_queries_total")
        self.respawns_crashed = registry.counter(
            "service_shard_respawns_total", reason="crashed"
        )
        self.respawns_hung = registry.counter(
            "service_shard_respawns_total", reason="hung"
        )
        self.shards = registry.gauge("service_shards")
        self.unhealthy = registry.gauge("service_shards_unhealthy")
        # SLO instruments, refreshed each supervision cycle from the
        # HTTP layer's request histograms/counters (see _update_slos).
        self.request_p99 = registry.gauge("service_request_p99_seconds")
        self.error_ratio = registry.meter("service_error_ratio")


class ServiceRunner:
    """Own the shard fleet; route ingest and queries; survive deaths.

    ``metrics``/``events``/``tracer`` attach the usual registry,
    structured log, and span tracer (the HTTP layer parents a ``route``
    → ``shard.rpc`` → grafted ``engine.ingest`` chain under each
    request); ``alert_rules`` (see
    :func:`repro.obs.alerts.default_service_rules`) are evaluated over
    the live fleet aggregate every supervision cycle.  The runner is
    thread-safe: the asyncio API layer calls it from executor threads
    while the supervision thread respawns shards underneath.
    """

    def __init__(
        self,
        config: ServiceConfig,
        metrics=None,
        events=None,
        alert_rules=None,
        tracer=None,
    ) -> None:
        self.config = config
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.events = NULL_EVENT_LOG if events is None else events
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._m = _ServiceMetrics(self.metrics)
        # (errors, total) request counts at the last SLO cycle, so the
        # error-ratio meter sees per-cycle deltas, not lifetime sums.
        self._last_requests = (0.0, 0.0)
        self._alert_rules = tuple(alert_rules) if alert_rules else ()
        self.alerts: AlertEngine | None = None
        self.fleet = FleetView()
        self.ring = HashRing(
            range(config.n_shards),
            replicas=config.ring_replicas,
            seed=config.seed,
        )
        self.run_id: str | None = None
        self.started_monotonic: float | None = None
        self._slots = [_Slot(i) for i in range(config.n_shards)]
        self._ctx = multiprocessing.get_context(config.mp_context)
        self._heartbeat = self._ctx.Array(
            "d", config.n_shards, lock=False
        )
        self._supervisor = SlotSupervisor(
            deadline_s=config.shard_deadline_s,
            backoff=config.respawn_backoff,
            rejoin=self._rejoin,
        )
        self._fleet_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._running = False
        self.drain_report: dict | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> dict:
        """Spawn and recover every shard; start supervision.

        Returns per-shard ready info (journal recovery counts) — a
        restarted service reports how much state each shard replayed.
        """
        if self._running:
            raise RuntimeError("service is already running")
        self.run_id = uuid.uuid4().hex[:12]
        self.events = self.events.bind(run_id=self.run_id)
        self.alerts = (
            AlertEngine(self._alert_rules, events=self.events,
                        metrics=self.metrics)
            if self._alert_rules
            else None
        )
        Path(self.config.journal_dir).mkdir(parents=True, exist_ok=True)
        ready: dict[int, dict] = {}
        for slot in self._slots:
            slot.client = self._spawn(slot.shard_id)
            info = slot.client.wait_ready()
            slot.healthy = True
            self._supervisor.beat(slot.shard_id)
            ready[slot.shard_id] = info
            self.events.info(
                "service.shard_ready",
                shard_id=slot.shard_id,
                pid=info["pid"],
                n_replayed=info["n_replayed"],
                truncated_bytes=info["truncated_bytes"],
            )
        self._m.shards.set(self.config.n_shards)
        self._m.unhealthy.set(0)
        self._running = True
        self.started_monotonic = time.monotonic()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._supervise_loop,
            name="service-supervisor",
            daemon=True,
        )
        self._thread.start()
        self.events.info(
            "service.started",
            n_shards=self.config.n_shards,
            seed=self.config.seed,
            journal_dir=str(self.config.journal_dir),
        )
        return ready

    def stop(self, drain: bool = True) -> dict | None:
        """SIGTERM path: supervision off, drain, manifest, workers out.

        The ordering is the graceful-shutdown contract: (1) the
        supervision thread stops first so it cannot respawn shards the
        shutdown is retiring; (2) each shard drains — admission queue
        pumped dry, due windows closed, journal flushed and fsynced —
        and reports its final stats; (3) the final service manifest is
        written next to the journals; (4) only then do workers exit.
        """
        if not self._running:
            return self.drain_report
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        report: dict | None = None
        if drain:
            report = self.drain()
        for slot in self._slots:
            with slot.lock:
                slot.healthy = False
                if slot.client is not None:
                    slot.client.stop()
        self._m.shards.set(0)
        self._running = False
        self.events.info("service.stopped", drained=drain)
        return report

    def drain(self) -> dict:
        """Drain every healthy shard; write the final manifest."""
        shards: dict[int, dict] = {}
        for slot in self._slots:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    shards[slot.shard_id] = {"drained": False}
                    continue
                try:
                    stats = slot.client.drain()
                except (ShardDownError, ShardTimeoutError) as error:
                    slot.healthy = False
                    shards[slot.shard_id] = {
                        "drained": False, "error": str(error)
                    }
                    continue
            stats["drained"] = True
            shards[slot.shard_id] = stats
            self.events.info(
                "service.shard_drained",
                shard_id=slot.shard_id,
                depth=stats["depth"],
                journal_last_seq=stats["journal_last_seq"],
            )
        manifest = self.manifest(shards={str(k): v for k, v in shards.items()})
        manifest_path = Path(self.config.journal_dir) / "service-manifest.json"
        manifest.save(manifest_path)
        self.drain_report = {
            "shards": shards,
            "manifest_path": str(manifest_path),
        }
        return self.drain_report

    def manifest(self, **extra) -> RunManifest:
        """Telemetry manifest over the fleet aggregate."""
        return RunManifest.capture(
            kind="service",
            registry=self.fleet_registry(),
            seed=self.config.seed,
            n_blocks=None,
            quality_gates={},
            run_id=self.run_id,
            n_shards=self.config.n_shards,
            journal_dir=str(self.config.journal_dir),
            respawns=self._supervisor.n_respawns,
            **extra,
        )

    # -- routing and ingest ------------------------------------------------

    def owner(self, block_id: int) -> int:
        """The shard id the ring assigns this block."""
        return self.ring.lookup(int(block_id))

    def ingest(self, observations, parent_context=None) -> dict:
        """Route ``(block_id, time_s, value)`` triples to their shards.

        Returns an admission report: per-shard accepted counts, plus
        ``backpressure``/``down`` flags when any observation was
        rejected.  A shard whose admission queue asserted backpressure
        on a previous batch rejects whole batches (the HTTP layer turns
        that into 429 + Retry-After) until its queue drains below the
        low watermark; a shard that is down rejects with 503 semantics.
        Within a shard, arrival order is preserved.

        ``parent_context`` (a :class:`~repro.obs.tracing.TraceContext`,
        normally the HTTP layer's ``http.request`` span) parents a
        ``route`` span covering the fan-out, with one ``shard.rpc``
        child per shard whose context rides the ingest RPC — the shard
        worker's ``engine.ingest`` span comes home via telemetry delta
        and grafts into the same trace.
        """
        obs = list(observations)
        by_shard: dict[int, list] = {}
        for triple in obs:
            by_shard.setdefault(self.owner(triple[0]), []).append(triple)
        report = {
            "accepted": 0,
            "rejected": 0,
            "backpressure": False,
            "down": False,
            "shards": {},
        }
        route_span = self.tracer.begin(
            "route", parent_context=parent_context,
            n_obs=len(obs), n_shards=len(by_shard),
        )
        for shard_id in sorted(by_shard):
            batch = by_shard[shard_id]
            shard_report = self._ingest_shard(shard_id, batch, route_span)
            report["accepted"] += shard_report["accepted"]
            report["rejected"] += shard_report["rejected"]
            report["backpressure"] |= shard_report["reason"] == "backpressure"
            report["down"] |= shard_report["reason"] == "shard_down"
            report["shards"][shard_id] = shard_report
        self.tracer.end(route_span)
        if route_span is not None:
            self.events.info(
                "service.route",
                trace_id=route_span.trace_id,
                span_id=route_span.span_id,
                parent_span_id=route_span.parent_span_id,
                n_obs=len(obs),
                accepted=report["accepted"],
                rejected=report["rejected"],
            )
        return report

    def _ingest_shard(
        self, shard_id: int, batch: list, route_span=None
    ) -> dict:
        slot = self._slots[shard_id]
        n = len(batch)
        if not slot.healthy:
            self._m.rejected_down.inc(n)
            return {"accepted": 0, "rejected": n, "reason": "shard_down"}
        if slot.paused:
            # Honor the shard's standing backpressure signal without
            # another round trip; the supervision cycle (and the next
            # accepted batch) refresh it when the queue drains.
            self._refresh_paused(slot)
            if slot.paused:
                self._m.rejected_bp.inc(n)
                return {
                    "accepted": 0, "rejected": n, "reason": "backpressure"
                }
        ids = np.fromiter((t[0] for t in batch), dtype=np.int64, count=n)
        times = np.fromiter((t[1] for t in batch), dtype=np.float64, count=n)
        values = np.fromiter((t[2] for t in batch), dtype=np.float64, count=n)
        rpc_span = self.tracer.begin(
            "shard.rpc", parent=route_span, shard_id=shard_id, n=n
        )
        rpc_ctx = rpc_span.context.to_dict() if rpc_span is not None else None
        accepted = 0
        ack: dict | None = None
        try:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    raise ShardDownError(f"shard {shard_id} is down")
                for start in range(0, n, self.config.max_batch):
                    end = start + self.config.max_batch
                    ack = slot.client.ingest(
                        ids[start:end], times[start:end], values[start:end],
                        trace_context=rpc_ctx,
                    )
                    accepted += ack["accepted"]
        except (ShardDownError, ShardTimeoutError):
            slot.healthy = False
            self.tracer.end(rpc_span, parent=route_span)
            self._m.ingested.inc(accepted)
            self._m.rejected_down.inc(n - accepted)
            return {
                "accepted": accepted,
                "rejected": n - accepted,
                "reason": "shard_down",
            }
        self.tracer.end(rpc_span, parent=route_span)
        if rpc_span is not None:
            self.events.info(
                "service.shard_rpc",
                trace_id=rpc_span.trace_id,
                span_id=rpc_span.span_id,
                parent_span_id=rpc_span.parent_span_id,
                shard_id=shard_id,
                n=n,
                accepted=accepted,
            )
        slot.paused = bool(ack["paused"]) if ack is not None else False
        self._m.ingested.inc(accepted)
        return {
            "accepted": accepted,
            "rejected": 0,
            "reason": None,
            "depth": ack["depth"] if ack is not None else 0,
            "paused": slot.paused,
        }

    def _refresh_paused(self, slot: _Slot) -> None:
        try:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    return
                stats = slot.client.stats()
            slot.paused = bool(stats["paused"])
        except (ShardDownError, ShardTimeoutError):
            slot.healthy = False

    # -- queries -----------------------------------------------------------

    def query_block(self, block_id: int) -> dict | None:
        """The owning shard's live snapshot (None for untracked blocks).

        Raises :class:`ShardDownError` while the owner is out of the
        ring — the caller serves 503 + Retry-After rather than a stale
        or empty answer.
        """
        shard_id = self.owner(block_id)
        slot = self._slots[shard_id]
        self._m.queries.inc()
        with slot.lock:
            if not slot.healthy or slot.client is None:
                raise ShardDownError(
                    f"shard {shard_id} (owner of block {block_id}) is down"
                )
            try:
                return slot.client.query_block(block_id)
            except (ShardDownError, ShardTimeoutError):
                slot.healthy = False
                raise ShardDownError(
                    f"shard {shard_id} (owner of block {block_id}) is down"
                )

    def phase_map(self) -> dict:
        """Merged diurnal phase map across healthy shards.

        ``partial`` is true when any shard could not answer — the map
        is still served (an outage monitor prefers a flagged partial
        answer over none), with the missing shards named.
        """
        self._m.queries.inc()
        blocks: dict[int, dict] = {}
        missing: list[int] = []
        for slot in self._slots:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    missing.append(slot.shard_id)
                    continue
                try:
                    shard_map = slot.client.phase_map()
                except (ShardDownError, ShardTimeoutError):
                    slot.healthy = False
                    missing.append(slot.shard_id)
                    continue
            blocks.update(shard_map)
        return {
            "blocks": blocks,
            "partial": bool(missing),
            "missing_shards": missing,
        }

    def fleet_snapshot(self) -> dict:
        """Operational view: ring, per-shard health/stats, respawns."""
        shards = {}
        for slot in self._slots:
            entry: dict = {
                "healthy": slot.healthy,
                "respawns": slot.respawns,
                "paused": slot.paused,
            }
            with slot.lock:
                client = slot.client
                if slot.healthy and client is not None:
                    entry["pid"] = client.pid
                    try:
                        entry["stats"] = client.stats()
                    except (ShardDownError, ShardTimeoutError):
                        slot.healthy = False
                        entry["healthy"] = False
            shards[str(slot.shard_id)] = entry
        return {
            "run_id": self.run_id,
            "n_shards": self.config.n_shards,
            "ring_replicas": self.config.ring_replicas,
            "seed": self.config.seed,
            "uptime_s": (
                time.monotonic() - self.started_monotonic
                if self.started_monotonic is not None
                else 0.0
            ),
            "respawns": self._supervisor.n_respawns,
            "alerts_firing": (
                self.alerts.firing() if self.alerts is not None else []
            ),
            "shards": shards,
        }

    def flush(self, close_partial: bool = False) -> dict:
        """Close every due window on every healthy shard (test/admin)."""
        out = {}
        for slot in self._slots:
            with slot.lock:
                if slot.healthy and slot.client is not None:
                    out[slot.shard_id] = slot.client.flush(close_partial)
        return out

    @property
    def healthy(self) -> bool:
        return self._running and all(s.healthy for s in self._slots)

    @property
    def running(self) -> bool:
        return self._running

    # -- telemetry ---------------------------------------------------------

    def fleet_registry(self):
        """Aggregate registry: every shard plus the runner's own."""
        with self._fleet_lock:
            return self.fleet.aggregate(self.metrics)

    def metrics_text(self) -> str:
        return prometheus_text(self.fleet_registry())

    def metrics_json(self) -> dict:
        snap = json_snapshot(self.fleet_registry())
        snap["service"] = {
            "run_id": self.run_id,
            "respawns": self._supervisor.n_respawns,
            "n_deltas": self.fleet.n_deltas,
        }
        return snap

    def _on_delta(self, delta) -> None:
        with self._fleet_lock:
            applied = self.fleet.apply(delta)
        if applied:
            for span_data in delta.spans:
                # Worker span trees (engine.ingest and friends) land as
                # local roots; they already carry the request trace_id
                # and name their shard.rpc parent, so trace_spans()
                # stitches them back under the HTTP request.
                self.tracer.graft(span_data)
            for record in delta.events:
                self.events.emit(record)

    # -- supervision -------------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Chaos hook: hard-kill one shard (no drain, no journal flush).

        The supervision loop observes the death, respawns the worker,
        replays its journal, and rejoins it to the ring — exactly the
        path a production OOM kill takes.
        """
        slot = self._slots[shard_id]
        with slot.lock:
            slot.healthy = False
            if slot.client is not None:
                slot.client.kill()
        self.events.warning("service.shard_killed", shard_id=shard_id)

    def wait_healthy(self, timeout_s: float = 30.0) -> bool:
        """Block until every shard is back in the ring (tests/smoke)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.healthy:
                return True
            time.sleep(0.02)
        return self.healthy

    def _rejoin(self, shard_id: int) -> None:
        """SlotSupervisor rejoin hook: the shard is back in the ring."""
        self.events.info("service.shard_rejoined", shard_id=shard_id)

    def _supervise_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        while not self._stop_event.wait(interval):
            for slot in self._slots:
                if self._stop_event.is_set():
                    return
                client = slot.client
                if client is None:
                    continue
                if slot.healthy:
                    self._supervisor.beat(
                        slot.shard_id, at=self._heartbeat[slot.shard_id]
                    )
                dead = not client.alive
                stale = (
                    not dead
                    and slot.healthy
                    and self._supervisor.stale(slot.shard_id)
                )
                if dead or stale or not slot.healthy:
                    # Unhealthy covers slots failed mid-RPC whose
                    # process still runs: the pipe state is torn, so
                    # reap and respawn either way.
                    self._respawn(slot, "crashed" if dead else "hung")
                elif (
                    not slot.settled
                    and time.monotonic() - slot.respawned_at
                    > self.config.settle_s
                ):
                    slot.settled = True
                    self._supervisor.mark_alive(slot.shard_id)
            self._evaluate_alerts()

    def _evaluate_alerts(self) -> None:
        self._update_slos()
        if self.alerts is None:
            return
        n_unhealthy = sum(1 for s in self._slots if not s.healthy)
        self._m.unhealthy.set(n_unhealthy)
        self.alerts.evaluate(self.fleet_registry())

    def _update_slos(self) -> None:
        """Fold request metrics into the SLO instruments, once per cycle.

        ``service_request_p99_seconds`` is the Prometheus-style quantile
        estimate over every ``service_request_seconds`` route histogram
        the HTTP layer has registered (lifetime buckets — monotone and
        cheap; the alert rule's ``for_cycles`` hysteresis supplies the
        windowing).  ``service_error_ratio`` is an EWMA meter fed the
        per-cycle 5xx/total delta — a burn rate, deliberately excluding
        429s, which are the backpressure contract working, not an error
        budget spend.
        """
        if not self._m.enabled:
            return
        hists = []
        errors = total = 0.0
        for metric in self.metrics.collect():
            if metric.name == "service_request_seconds":
                hists.append(metric)
            elif metric.name == "service_requests_total":
                total += metric.value
                if str(metric.labels.get("status", "")).startswith("5"):
                    errors += metric.value
        self._m.request_p99.set(histogram_quantile(hists, 0.99))
        d_errors = errors - self._last_requests[0]
        d_total = total - self._last_requests[1]
        self._last_requests = (errors, total)
        if d_total > 0:
            self._m.error_ratio.observe(d_errors / d_total)

    def _respawn(self, slot: _Slot, reason: str) -> None:
        shard_id = slot.shard_id
        (self._m.respawns_crashed if reason == "crashed"
         else self._m.respawns_hung).inc()
        self.events.warning(
            f"service.shard_{reason}",
            shard_id=shard_id,
            streak=self._supervisor.streak(shard_id) + 1,
        )
        with slot.lock:
            slot.healthy = False
            slot.paused = False
            if slot.client is not None:
                slot.client.kill()
                slot.client = None
        self._m.unhealthy.set(sum(1 for s in self._slots if not s.healthy))
        delay = self._supervisor.respawn_delay(shard_id)
        if delay > 0:
            self.events.warning(
                "service.respawn_backoff", shard_id=shard_id, delay_s=delay
            )
            if self._stop_event.wait(delay):
                return
        client = self._spawn(shard_id)
        try:
            info = client.wait_ready()
        except (ShardDownError, ShardTimeoutError) as error:
            # The replacement died during recovery; leave the slot
            # unhealthy — the next supervision cycle tries again,
            # paced by the growing backoff streak.
            self.events.error(
                "service.shard_recovery_failed",
                shard_id=shard_id,
                error=str(error),
            )
            with slot.lock:
                slot.client = client  # dead client; alive=False re-triggers
            return
        with slot.lock:
            slot.client = client
            slot.healthy = True
            slot.respawns += 1
            slot.respawned_at = time.monotonic()
            slot.settled = False
        self._supervisor.respawned(shard_id)
        self._m.unhealthy.set(sum(1 for s in self._slots if not s.healthy))
        self.events.info(
            "service.shard_respawned",
            shard_id=shard_id,
            reason=reason,
            pid=info["pid"],
            n_replayed=info["n_replayed"],
        )

    def _spawn(self, shard_id: int) -> ShardClient:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._heartbeat[shard_id] = time.monotonic()
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                child_conn,
                self._heartbeat,
                shard_id,
                self.config.shard_config(),
                str(self.config.journal_path(shard_id)),
            ),
            daemon=True,
            name=f"serve-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return ShardClient(
            shard_id,
            process,
            parent_conn,
            timeout_s=self.config.request_timeout_s,
            on_delta=self._on_delta if self.config.telemetry else None,
        )

"""ServiceRunner: shards, routing, supervision, drain — the service core.

The runner is everything between the HTTP layer and the shard worker
processes:

* **placement** — a seeded :class:`~repro.serve.ring.HashRing` maps
  every block id to the ``replication`` distinct shards of its replica
  chain (``lookup_chain``); entry 0 is the classic single owner.  The
  ring is fixed at start; a dead shard is marked *unhealthy* rather
  than remapped, because its state lives in its journal and moving the
  keys would strand it.  Respawn + replay + rejoin restores the same
  placement with the same state.
* **replication** (``replication > 1``) — every accepted observation
  fans out to all live replicas in its chain, each copy carrying a
  sequence number from the *destination* shard's stream (workers mask
  seqs at or below their journal high-water, so re-sends are
  idempotent).  Copies owed to a dead replica park as **hinted
  handoff** in the first live replica of the chain; a respawned shard
  replays its journal, then anti-entropy syncs the hints (final round
  gated against concurrent writes) before it turns healthy — failover
  and rejoin are both invisible to clients.  Reads assemble a quorum
  across the chain and pick the freshest answer by applied-observation
  count, degrading explicitly (``partial``/``stale``), never silently.
* **supervision** — a daemon thread checks process liveness and
  heartbeat staleness every cycle using the
  :class:`~repro.core.supervisor.SlotSupervisor` policy: a dead or
  wedged shard is reaped, its replacement is paced by the shared
  :class:`~repro.core.retry.RetryPolicy`, recovers by journal replay
  *before* reporting ready, and only then rejoins the ring.  Alert
  rules are evaluated over the live fleet aggregate each cycle.
* **telemetry** — every shard reply carries a
  :class:`~repro.obs.distributed.TelemetryDelta`; the runner folds
  them into a :class:`~repro.obs.distributed.FleetView`, so ``GET
  /metrics`` serves one aggregate registry (shards + the runner's own
  service metrics) through the existing Prometheus/JSON exporters.
  Each supervision cycle additionally samples that aggregate into a
  bounded :class:`~repro.obs.history.MetricsHistory` (served by ``GET
  /metrics/history`` and the ``/dashboard`` sparklines, persisted
  across drain/restart), and, when incident capture is configured,
  routes alert fired/resolved transitions into an
  :class:`~repro.obs.incidents.IncidentRecorder` that freezes the
  correlated evidence — history windows, event-ring tail, per-worker
  flight recorders, trace ids — into an atomic bundle directory.
* **graceful drain** — :meth:`stop` (the SIGTERM path) first stops the
  supervision thread (so the shutdown is not "healed"), then drains
  every shard in the documented order — admission queue pumped dry,
  due windows closed, journal flushed and fsynced — writes a final
  :class:`~repro.obs.export.RunManifest` checkpoint next to the
  journals, and only then tells workers to exit.  A clean stop never
  leaves a torn journal tail.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.retry import RetryPolicy
from repro.core.supervisor import SlotSupervisor
from repro.obs.alerts import AlertEngine
from repro.obs.distributed import FleetView
from repro.obs.events import FlightRecorder, NULL_EVENT_LOG
from repro.obs.history import HistoryConfig, MetricsHistory
from repro.obs.incidents import IncidentConfig, IncidentRecorder
from repro.obs.export import RunManifest, json_snapshot, prometheus_text
from repro.obs.registry import NULL_REGISTRY, histogram_quantile
from repro.obs.tracing import NULL_TRACER
from repro.serve.ring import HashRing
from repro.serve.shard import (
    ShardClient,
    ShardConfig,
    ShardDownError,
    ShardTimeoutError,
    _shard_main,
)
from repro.stream.engine import StreamConfig
from repro.stream.journal import StreamJournal
from repro.stream.overload import OverloadConfig

__all__ = [
    "ServiceConfig",
    "ServiceRunner",
    "ShardDownError",
    "ShardTimeoutError",
]


@dataclass(frozen=True)
class ServiceConfig:
    """The always-on service's knobs.

    Attributes:
        stream: engine configuration shared by every shard (verdicts
            must not depend on placement).
        journal_dir: directory holding one write-ahead journal per
            shard (``shard-NN.journal``) plus the final manifest.
        n_shards: shard worker processes.
        replication: replicas per block (``lookup_chain`` width).  1 is
            the classic single-owner service; R > 1 fans every write to
            R distinct shards, keeps serving through R−1 failures, and
            catches dead replicas up via hinted handoff on rejoin.
        hint_capacity: hinted observations one surviving shard will
            hold for dead peers before marking them stale (explicit
            degradation instead of unbounded memory).
        overload: per-shard admission queue bounds and shed policy.
        ring_replicas: virtual points per shard on the hash ring.
        seed: ring placement seed (also the default overload seed).
        shard_deadline_s: heartbeat staleness past which a live-but-
            wedged shard is reaped; ``None`` disables (death is still
            detected via the process sentinel).
        heartbeat_interval_s: supervision poll period.
        stable_after_s: seconds a respawned shard must survive before
            its respawn streak resets (crash-looping shards keep
            backing off); defaults to ``4 × shard_deadline_s`` or 1 s.
        respawn_backoff: pacing for consecutive respawns of one shard.
        request_timeout_s: per-RPC answer deadline.
        max_batch: largest observation batch per ingest RPC (bigger
            router batches are chunked, keeping worker heartbeats
            fresh and pipe frames bounded).
        pump_budget: see :class:`~repro.serve.shard.ShardConfig`.
        journal_sync_every: see :class:`~repro.serve.shard.ShardConfig`.
        retry_after_s: the Retry-After hint served with 429/503.
        telemetry: instrument shards and ship deltas.
        history: time-series retention for the fleet telemetry
            (``None`` disables).  The supervision loop samples the
            fleet aggregate into a
            :class:`~repro.obs.history.MetricsHistory` (throttled by
            the config's ``sample_min_interval_s``), the API serves it
            via ``/metrics/history`` and ``/dashboard``, and drain
            persists it to ``history_path`` for the next start to
            reload.
        incidents: alert-triggered forensic capture (``None``
            disables).  Wires an
            :class:`~repro.obs.incidents.IncidentRecorder` into the
            alert engine's transitions and keeps an event-ring tail
            plus per-worker flight recorders for its bundles.
        mp_context: multiprocessing start method.
    """

    stream: StreamConfig
    journal_dir: str | Path
    n_shards: int = 2
    replication: int = 1
    hint_capacity: int = 65536
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    ring_replicas: int = 128
    seed: int = 0
    shard_deadline_s: float | None = 5.0
    heartbeat_interval_s: float = 0.05
    stable_after_s: float | None = None
    respawn_backoff: RetryPolicy = field(default_factory=RetryPolicy)
    request_timeout_s: float = 30.0
    max_batch: int = 4096
    pump_budget: int = 2048
    journal_sync_every: int | None = 256
    retry_after_s: float = 1.0
    telemetry: bool = True
    history: HistoryConfig | None = field(default_factory=HistoryConfig)
    incidents: IncidentConfig | None = None
    mp_context: str = "fork"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.replication < 1:
            raise ValueError("replication must be at least 1")
        if self.replication > self.n_shards:
            raise ValueError(
                f"replication {self.replication} needs {self.replication} "
                f"distinct shards but n_shards is {self.n_shards}"
            )
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")

    @property
    def settle_s(self) -> float:
        """Healthy-streak reset horizon (see ``stable_after_s``)."""
        if self.stable_after_s is not None:
            return self.stable_after_s
        if self.shard_deadline_s is not None:
            return 4.0 * self.shard_deadline_s
        return 1.0

    def shard_config(self) -> ShardConfig:
        return ShardConfig(
            stream=self.stream,
            overload=self.overload,
            journal_sync_every=self.journal_sync_every,
            pump_budget=self.pump_budget,
            hint_capacity=self.hint_capacity,
            telemetry=self.telemetry,
        )

    def journal_path(self, shard_id: int) -> Path:
        return Path(self.journal_dir) / f"shard-{shard_id:02d}.journal"

    @property
    def history_path(self) -> Path:
        """Where drained telemetry history persists, next to the journals."""
        return Path(self.journal_dir) / "metrics-history.jsonl"


class _Slot:
    """Supervisor-side state for one shard slot."""

    __slots__ = (
        "shard_id",
        "client",
        "healthy",
        "paused",
        "stale",
        "respawns",
        "respawned_at",
        "settled",
        "lock",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.client: ShardClient | None = None
        self.healthy = False
        self.paused = False
        # Sticky: hints owed to this shard were dropped (capacity or a
        # holder died), so its copy of some blocks is permanently
        # behind until an out-of-band anti-entropy pass.  Reads served
        # *only* by stale replicas carry an explicit stale flag.
        self.stale = False
        self.respawns = 0
        self.respawned_at = 0.0
        self.settled = True
        self.lock = threading.Lock()


class _ServiceMetrics:
    """Pre-bound runner metrics (null registry by default)."""

    __slots__ = ("enabled", "ingested", "rejected_bp", "rejected_down",
                 "degraded", "hints_stored", "hints_replayed",
                 "hints_dropped", "hint_backlog", "reads_partial",
                 "reads_stale", "syncing",
                 "queries", "respawns_crashed", "respawns_hung",
                 "shards", "unhealthy", "request_p99", "error_ratio")

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.ingested = registry.counter("service_ingest_observations_total")
        self.rejected_bp = registry.counter(
            "service_ingest_rejected_total", reason="backpressure"
        )
        self.rejected_down = registry.counter(
            "service_ingest_rejected_total", reason="shard_down"
        )
        # The third leg of the write-outcome accounting: accepted, but
        # on fewer than R live replicas (the missing copies are hinted).
        self.degraded = registry.counter("service_ingest_degraded_total")
        self.hints_stored = registry.counter(
            "service_hints_total", outcome="stored"
        )
        self.hints_replayed = registry.counter(
            "service_hints_total", outcome="replayed"
        )
        self.hints_dropped = registry.counter(
            "service_hints_total", outcome="dropped"
        )
        # Replication lag, measured in observations a dead replica is
        # owed; drained back to zero by the rejoin sync.
        self.hint_backlog = registry.gauge("service_hint_backlog")
        self.reads_partial = registry.counter(
            "service_reads_degraded_total", mode="partial"
        )
        self.reads_stale = registry.counter(
            "service_reads_degraded_total", mode="stale"
        )
        self.syncing = registry.gauge("service_replicas_syncing")
        self.queries = registry.counter("service_queries_total")
        self.respawns_crashed = registry.counter(
            "service_shard_respawns_total", reason="crashed"
        )
        self.respawns_hung = registry.counter(
            "service_shard_respawns_total", reason="hung"
        )
        self.shards = registry.gauge("service_shards")
        self.unhealthy = registry.gauge("service_shards_unhealthy")
        # SLO instruments, refreshed each supervision cycle from the
        # HTTP layer's request histograms/counters (see _update_slos).
        self.request_p99 = registry.gauge("service_request_p99_seconds")
        self.error_ratio = registry.meter("service_error_ratio")


class ServiceRunner:
    """Own the shard fleet; route ingest and queries; survive deaths.

    ``metrics``/``events``/``tracer`` attach the usual registry,
    structured log, and span tracer (the HTTP layer parents a ``route``
    → ``shard.rpc`` → grafted ``engine.ingest`` chain under each
    request); ``alert_rules`` (see
    :func:`repro.obs.alerts.default_service_rules`) are evaluated over
    the live fleet aggregate every supervision cycle.  The runner is
    thread-safe: the asyncio API layer calls it from executor threads
    while the supervision thread respawns shards underneath.
    """

    def __init__(
        self,
        config: ServiceConfig,
        metrics=None,
        events=None,
        alert_rules=None,
        tracer=None,
    ) -> None:
        self.config = config
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.events = NULL_EVENT_LOG if events is None else events
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._m = _ServiceMetrics(self.metrics)
        # (errors, total) request counts at the last SLO cycle, so the
        # error-ratio meter sees per-cycle deltas, not lifetime sums.
        self._last_requests = (0.0, 0.0)
        self._alert_rules = tuple(alert_rules) if alert_rules else ()
        self.alerts: AlertEngine | None = None
        self.history: MetricsHistory | None = None
        self.incidents: IncidentRecorder | None = None
        # Incident-capture state: the service event ring (bound into
        # the logger so every record tees through it) and one flight
        # recorder per worker, fed from telemetry deltas.
        self._event_ring: FlightRecorder | None = None
        self._flights: dict[int, FlightRecorder] = {}
        self.fleet = FleetView()
        self.ring = HashRing(
            range(config.n_shards),
            replicas=config.ring_replicas,
            seed=config.seed,
        )
        self.run_id: str | None = None
        self.started_monotonic: float | None = None
        self._slots = [_Slot(i) for i in range(config.n_shards)]
        self._ctx = multiprocessing.get_context(config.mp_context)
        self._heartbeat = self._ctx.Array(
            "d", config.n_shards, lock=False
        )
        self._supervisor = SlotSupervisor(
            deadline_s=config.shard_deadline_s,
            backoff=config.respawn_backoff,
            rejoin=self._rejoin,
        )
        self._fleet_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._running = False
        self.drain_report: dict | None = None
        # Replication state (all no-ops at replication=1).  The ingest
        # lock serializes seq assignment *and* dispatch, so every
        # shard sees every destination stream in assignment order; the
        # rejoin sync takes the same lock for its final hint round, so
        # a healing shard can never miss a concurrent write.
        self._ingest_lock = threading.Lock()
        self._next_seq: dict[int, int] = {}
        # block id -> replica chain; the ring is fixed at start, so the
        # cache is append-only and safe to share across threads.
        self._chains: dict[int, tuple[int, ...]] = {}
        # (holder, target) -> hints parked at holder for target; the
        # runner initiates every store and ack, so this mirror is exact
        # while holders live (a reaped holder zeroes its rows and marks
        # the targets stale).
        self._hint_counts: dict[tuple[int, int], int] = {}
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> dict:
        """Spawn and recover every shard; start supervision.

        Returns per-shard ready info (journal recovery counts) — a
        restarted service reports how much state each shard replayed.
        """
        if self._running:
            raise RuntimeError("service is already running")
        self.run_id = uuid.uuid4().hex[:12]
        if self.config.incidents is not None:
            self._event_ring = FlightRecorder()
            self.events = self.events.bind(
                run_id=self.run_id, ring=self._event_ring
            )
        else:
            self.events = self.events.bind(run_id=self.run_id)
        self.alerts = (
            AlertEngine(self._alert_rules, events=self.events,
                        metrics=self.metrics)
            if self._alert_rules
            else None
        )
        self._init_history()
        if self.config.incidents is not None:
            self.incidents = IncidentRecorder(
                self.config.incidents,
                history=self.history,
                ring=self._event_ring,
                events=self.events,
            )
        Path(self.config.journal_dir).mkdir(parents=True, exist_ok=True)
        ready: dict[int, dict] = {}
        for slot in self._slots:
            slot.client = self._spawn(slot.shard_id)
            info = slot.client.wait_ready()
            slot.healthy = True
            self._supervisor.beat(slot.shard_id)
            ready[slot.shard_id] = info
            # Every destination stream resumes past its journal
            # high-water, so a restarted service never assigns a seq
            # the worker's idempotence mask would silently drop.
            self._next_seq[slot.shard_id] = int(info["last_seq"]) + 1
            self.events.info(
                "service.shard_ready",
                shard_id=slot.shard_id,
                pid=info["pid"],
                n_replayed=info["n_replayed"],
                truncated_bytes=info["truncated_bytes"],
            )
        if self.config.replication > 1:
            # Fan-out RPCs block on journal write-ahead + admission per
            # replica; dispatching them in parallel keeps the R-way
            # ingest cost near the slowest replica, not the sum.
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.n_shards,
                thread_name_prefix="service-fanout",
            )
        self._m.shards.set(self.config.n_shards)
        self._m.unhealthy.set(0)
        self._running = True
        self.started_monotonic = time.monotonic()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._supervise_loop,
            name="service-supervisor",
            daemon=True,
        )
        self._thread.start()
        self.events.info(
            "service.started",
            n_shards=self.config.n_shards,
            seed=self.config.seed,
            journal_dir=str(self.config.journal_dir),
        )
        return ready

    def stop(self, drain: bool = True) -> dict | None:
        """SIGTERM path: supervision off, drain, manifest, workers out.

        The ordering is the graceful-shutdown contract: (1) the
        supervision thread stops first so it cannot respawn shards the
        shutdown is retiring; (2) each shard drains — admission queue
        pumped dry, due windows closed, journal flushed and fsynced —
        and reports its final stats; (3) the final service manifest is
        written next to the journals; (4) only then do workers exit.
        """
        if not self._running:
            return self.drain_report
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        report: dict | None = None
        if drain:
            report = self.drain()
        for slot in self._slots:
            with slot.lock:
                slot.healthy = False
                if slot.client is not None:
                    slot.client.stop()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._m.shards.set(0)
        self._running = False
        self.events.info("service.stopped", drained=drain)
        return report

    def drain(self) -> dict:
        """Drain every healthy shard; write the final manifest.

        Under replication the hint queues flush *first* — forwarded
        through the normal ingest path when the owed shard is alive,
        appended straight into its journal file when it is dead — so
        the final manifest never strands an acked observation copy in
        a worker's memory.
        """
        hints_flushed: dict[int, int] = {}
        if self.config.replication > 1:
            hints_flushed = self._flush_all_hints()
        shards: dict[int, dict] = {}
        for slot in self._slots:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    shards[slot.shard_id] = {"drained": False}
                    continue
                try:
                    stats = slot.client.drain()
                except (ShardDownError, ShardTimeoutError) as error:
                    slot.healthy = False
                    shards[slot.shard_id] = {
                        "drained": False, "error": str(error)
                    }
                    continue
            stats["drained"] = True
            shards[slot.shard_id] = stats
            self.events.info(
                "service.shard_drained",
                shard_id=slot.shard_id,
                depth=stats["depth"],
                journal_last_seq=stats["journal_last_seq"],
            )
        manifest = self.manifest(shards={str(k): v for k, v in shards.items()})
        manifest_path = Path(self.config.journal_dir) / "service-manifest.json"
        manifest.save(manifest_path)
        self.drain_report = {
            "shards": shards,
            "hints_flushed": hints_flushed,
            "manifest_path": str(manifest_path),
        }
        if self.history is not None:
            # Final state capture (throttle bypassed — the drained
            # figures must be the file's newest points), then persist
            # through the atomic-write idiom so the next start reloads
            # exactly this window.
            self._record_history(
                self.fleet_registry(), time.time(), force=True
            )
            history_path = self.history.save(self.config.history_path)
            self.drain_report["history_path"] = str(history_path)
        return self.drain_report

    def manifest(self, **extra) -> RunManifest:
        """Telemetry manifest over the fleet aggregate."""
        return RunManifest.capture(
            kind="service",
            registry=self.fleet_registry(),
            seed=self.config.seed,
            n_blocks=None,
            quality_gates={},
            run_id=self.run_id,
            n_shards=self.config.n_shards,
            journal_dir=str(self.config.journal_dir),
            respawns=self._supervisor.n_respawns,
            **extra,
        )

    # -- routing and ingest ------------------------------------------------

    def owner(self, block_id: int) -> int:
        """The shard id the ring assigns this block (chain entry 0)."""
        return self.ring.lookup(int(block_id))

    def owners(self, block_id: int) -> tuple[int, ...]:
        """The block's replica chain: ``replication`` distinct shards."""
        return self._chain(int(block_id))

    def _chain(self, block_id: int) -> tuple[int, ...]:
        chain = self._chains.get(block_id)
        if chain is None:
            chain = tuple(
                self.ring.lookup_chain(block_id, self.config.replication)
            )
            self._chains[block_id] = chain
        return chain

    def ingest(self, observations, parent_context=None) -> dict:
        """Route ``(block_id, time_s, value)`` triples to their shards.

        Returns an admission report: per-shard accepted counts, plus
        ``backpressure``/``down``/``degraded`` flags when any
        observation was rejected or landed on fewer than R replicas.
        A shard whose admission queue asserted backpressure on a
        previous batch rejects whole batches (the HTTP layer turns
        that into 429 + Retry-After) until its queue drains below the
        low watermark; an observation whose *entire* replica chain is
        down rejects with 503 semantics.  Within a shard, arrival
        order is preserved.

        ``parent_context`` (a :class:`~repro.obs.tracing.TraceContext`,
        normally the HTTP layer's ``http.request`` span) parents a
        ``route`` span covering the fan-out, with one ``shard.rpc``
        child per shard whose context rides the ingest RPC — the shard
        worker's ``engine.ingest`` span comes home via telemetry delta
        and grafts into the same trace.
        """
        obs = list(observations)
        if self.config.replication > 1:
            with self._ingest_lock:
                return self._ingest_replicated(obs, parent_context)
        by_shard: dict[int, list] = {}
        for triple in obs:
            by_shard.setdefault(self.owner(triple[0]), []).append(triple)
        report = {
            "accepted": 0,
            "rejected": 0,
            "backpressure": False,
            "down": False,
            "degraded": False,
            "shards": {},
        }
        route_span = self.tracer.begin(
            "route", parent_context=parent_context,
            n_obs=len(obs), n_shards=len(by_shard),
        )
        for shard_id in sorted(by_shard):
            batch = by_shard[shard_id]
            shard_report = self._ingest_shard(shard_id, batch, route_span)
            report["accepted"] += shard_report["accepted"]
            report["rejected"] += shard_report["rejected"]
            report["backpressure"] |= shard_report["reason"] == "backpressure"
            report["down"] |= shard_report["reason"] == "shard_down"
            report["shards"][shard_id] = shard_report
        self.tracer.end(route_span)
        if route_span is not None:
            self.events.info(
                "service.route",
                trace_id=route_span.trace_id,
                span_id=route_span.span_id,
                parent_span_id=route_span.parent_span_id,
                n_obs=len(obs),
                accepted=report["accepted"],
                rejected=report["rejected"],
            )
        return report

    def _ingest_shard(
        self, shard_id: int, batch: list, route_span=None
    ) -> dict:
        slot = self._slots[shard_id]
        n = len(batch)
        if not slot.healthy:
            self._m.rejected_down.inc(n)
            return {"accepted": 0, "rejected": n, "reason": "shard_down"}
        if slot.paused:
            # Honor the shard's standing backpressure signal without
            # another round trip; the supervision cycle (and the next
            # accepted batch) refresh it when the queue drains.
            self._refresh_paused(slot)
            if slot.paused:
                self._m.rejected_bp.inc(n)
                return {
                    "accepted": 0, "rejected": n, "reason": "backpressure"
                }
        ids = np.fromiter((t[0] for t in batch), dtype=np.int64, count=n)
        times = np.fromiter((t[1] for t in batch), dtype=np.float64, count=n)
        values = np.fromiter((t[2] for t in batch), dtype=np.float64, count=n)
        rpc_span = self.tracer.begin(
            "shard.rpc", parent=route_span, shard_id=shard_id, n=n
        )
        rpc_ctx = rpc_span.context.to_dict() if rpc_span is not None else None
        accepted = 0
        ack: dict | None = None
        try:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    raise ShardDownError(f"shard {shard_id} is down")
                for start in range(0, n, self.config.max_batch):
                    end = start + self.config.max_batch
                    ack = slot.client.ingest(
                        ids[start:end], times[start:end], values[start:end],
                        trace_context=rpc_ctx,
                    )
                    accepted += ack["accepted"]
        except (ShardDownError, ShardTimeoutError):
            slot.healthy = False
            self.tracer.end(rpc_span, parent=route_span)
            self._m.ingested.inc(accepted)
            self._m.rejected_down.inc(n - accepted)
            return {
                "accepted": accepted,
                "rejected": n - accepted,
                "reason": "shard_down",
            }
        self.tracer.end(rpc_span, parent=route_span)
        if rpc_span is not None:
            self.events.info(
                "service.shard_rpc",
                trace_id=rpc_span.trace_id,
                span_id=rpc_span.span_id,
                parent_span_id=rpc_span.parent_span_id,
                shard_id=shard_id,
                n=n,
                accepted=accepted,
            )
        slot.paused = bool(ack["paused"]) if ack is not None else False
        self._m.ingested.inc(accepted)
        return {
            "accepted": accepted,
            "rejected": 0,
            "reason": None,
            "depth": ack["depth"] if ack is not None else 0,
            "paused": slot.paused,
        }

    def _refresh_paused(self, slot: _Slot) -> None:
        try:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    return
                stats = slot.client.stats()
            slot.paused = bool(stats["paused"])
        except (ShardDownError, ShardTimeoutError):
            slot.healthy = False

    # -- replicated ingest (called under _ingest_lock) ---------------------

    def _ingest_replicated(self, obs: list, parent_context=None) -> dict:
        """R-way fan-out: plan seqs, dispatch in parallel, hint the dead.

        Three write outcomes, all explicit: *accepted* (at least one
        live replica acked the copy; missing replicas are hinted and
        the write counts as *degraded* when fewer than R acked),
        *backpressure* (some live replica of the chain is paused — the
        whole observation is rejected so replicas never diverge), and
        *shard_down* (every replica of the chain is dead).
        """
        R = self.config.replication
        report = {
            "accepted": 0,
            "rejected": 0,
            "hinted": 0,
            "backpressure": False,
            "down": False,
            "degraded": False,
            "shards": {},
        }
        per_shard = report["shards"]

        def shard_entry(sid: int) -> dict:
            return per_shard.setdefault(
                sid, {"accepted": 0, "rejected": 0, "reason": None}
            )

        # Plan: one pass in arrival order, assigning each copy a seq
        # from its destination shard's stream (dead destinations
        # included — their copies become hints carrying the seq the
        # journal will expect).
        sends: dict[int, dict] = {}
        pending_hints: list[tuple] = []  # (target, seq, b, t, v, chain)
        positions: list[list[tuple[int, int]] | None] = [None] * len(obs)
        paused_checked: set[int] = set()
        for i, triple in enumerate(obs):
            block_id = int(triple[0])
            chain = self._chain(block_id)
            live = [s for s in chain if self._slots[s].healthy]
            if not live:
                report["rejected"] += 1
                report["down"] = True
                entry = shard_entry(chain[0])
                entry["rejected"] += 1
                entry["reason"] = "shard_down"
                self._m.rejected_down.inc()
                continue
            blocker = None
            for sid in live:
                slot = self._slots[sid]
                if slot.paused and sid not in paused_checked:
                    self._refresh_paused(slot)
                    paused_checked.add(sid)
                if slot.paused:
                    blocker = sid
                    break
            if blocker is not None:
                # Rejecting the whole observation (not just the paused
                # replica's copy) keeps live replicas bit-identical;
                # hinting *through* backpressure would let a client
                # outrun the admission contract via dead shards.
                report["rejected"] += 1
                report["backpressure"] = True
                entry = shard_entry(blocker)
                entry["rejected"] += 1
                entry["reason"] = "backpressure"
                self._m.rejected_bp.inc()
                continue
            time_s = float(triple[1])
            value = float(triple[2])
            pos_list: list[tuple[int, int]] = []
            for sid in chain:
                seq = self._next_seq[sid]
                self._next_seq[sid] = seq + 1
                if sid in live:
                    batch = sends.setdefault(
                        sid,
                        {"idx": [], "seqs": [], "ids": [],
                         "times": [], "vals": []},
                    )
                    pos_list.append((sid, len(batch["seqs"])))
                    batch["idx"].append(i)
                    batch["seqs"].append(seq)
                    batch["ids"].append(block_id)
                    batch["times"].append(time_s)
                    batch["vals"].append(value)
                else:
                    pending_hints.append(
                        (sid, seq, block_id, time_s, value, chain)
                    )
            positions[i] = pos_list

        route_span = self.tracer.begin(
            "route", parent_context=parent_context,
            n_obs=len(obs), n_shards=len(sends), replication=R,
        )
        results: dict[int, dict] = {}
        if len(sends) > 1 and self._pool is not None:
            futures = {
                sid: self._pool.submit(
                    self._send_replica_batch, sid, batch, route_span
                )
                for sid, batch in sends.items()
            }
            results = {sid: f.result() for sid, f in futures.items()}
        else:
            results = {
                sid: self._send_replica_batch(sid, batch, route_span)
                for sid, batch in sends.items()
            }

        # Per-observation resolution: accepted iff at least one live
        # copy was acked; degraded when fewer than R copies were.
        for i, pos_list in enumerate(positions):
            if pos_list is None:
                continue
            n_ok = sum(
                1 for sid, pos in pos_list if results[sid]["acked"] > pos
            )
            if n_ok > 0:
                report["accepted"] += 1
                self._m.ingested.inc()
                if n_ok < R:
                    report["degraded"] = True
                    self._m.degraded.inc()
            else:
                report["rejected"] += 1
                report["down"] = True
                self._m.rejected_down.inc()

        # Retro-hints: the un-acked tail of a batch whose replica died
        # mid-dispatch.  The worker may have journaled a prefix of it
        # before dying — the seq mask on replay/forward makes the
        # overlap idempotent, so hinting the whole tail is safe.
        for sid, res in results.items():
            batch = sends[sid]
            n = len(batch["seqs"])
            entry = shard_entry(sid)
            entry["accepted"] += res["acked"]
            if res["failed"]:
                entry["rejected"] += n - res["acked"]
                entry["reason"] = "shard_down"
                chain_of = self._chain
                for k in range(res["acked"], n):
                    pending_hints.append(
                        (sid, batch["seqs"][k], batch["ids"][k],
                         batch["times"][k], batch["vals"][k],
                         chain_of(batch["ids"][k]))
                    )
            else:
                entry["depth"] = res["depth"]
                entry["paused"] = res["paused"]

        report["hinted"] = self._store_hints(pending_hints)

        self.tracer.end(route_span)
        if route_span is not None:
            self.events.info(
                "service.route",
                trace_id=route_span.trace_id,
                span_id=route_span.span_id,
                parent_span_id=route_span.parent_span_id,
                n_obs=len(obs),
                accepted=report["accepted"],
                rejected=report["rejected"],
                hinted=report["hinted"],
            )
        return report

    def _send_replica_batch(
        self, shard_id: int, batch: dict, route_span=None
    ) -> dict:
        """One replica's ingest RPCs (runs on the fan-out pool)."""
        slot = self._slots[shard_id]
        n = len(batch["seqs"])
        ids = np.asarray(batch["ids"], dtype=np.int64)
        times = np.asarray(batch["times"], dtype=np.float64)
        values = np.asarray(batch["vals"], dtype=np.float64)
        seqs = np.asarray(batch["seqs"], dtype=np.int64)
        rpc_span = self.tracer.begin(
            "shard.rpc", parent=route_span, shard_id=shard_id, n=n
        )
        rpc_ctx = rpc_span.context.to_dict() if rpc_span is not None else None
        acked = 0
        ack: dict | None = None
        failed = False
        try:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    raise ShardDownError(f"shard {shard_id} is down")
                for start in range(0, n, self.config.max_batch):
                    end = min(start + self.config.max_batch, n)
                    ack = slot.client.ingest(
                        ids[start:end], times[start:end], values[start:end],
                        seqs=seqs[start:end], trace_context=rpc_ctx,
                    )
                    acked += end - start
        except (ShardDownError, ShardTimeoutError):
            slot.healthy = False
            failed = True
        self.tracer.end(rpc_span, parent=route_span)
        if rpc_span is not None:
            self.events.info(
                "service.shard_rpc",
                trace_id=rpc_span.trace_id,
                span_id=rpc_span.span_id,
                parent_span_id=rpc_span.parent_span_id,
                shard_id=shard_id,
                n=n,
                accepted=acked,
            )
        if not failed and ack is not None:
            slot.paused = bool(ack["paused"])
        return {
            "acked": acked,
            "failed": failed,
            "depth": ack["depth"] if ack is not None else 0,
            "paused": slot.paused,
        }

    def _store_hints(self, pending: list[tuple]) -> int:
        """Park copies owed to dead replicas at their chain's first
        live shard; a copy with no live holder is *dropped* and its
        target marked stale (never silently lost)."""
        if not pending:
            return 0
        batches: dict[tuple[int, int], list] = {}
        for target, seq, block_id, time_s, value, chain in pending:
            holder = next(
                (s for s in chain
                 if s != target and self._slots[s].healthy),
                None,
            )
            if holder is None:
                self._m.hints_dropped.inc()
                self._slots[target].stale = True
                continue
            batches.setdefault((holder, target), []).append(
                (seq, block_id, time_s, value)
            )
        stored_total = 0
        for (holder_id, target), entries in sorted(batches.items()):
            entries.sort()
            holder = self._slots[holder_id]
            try:
                with holder.lock:
                    if not holder.healthy or holder.client is None:
                        raise ShardDownError(f"shard {holder_id} is down")
                    res = holder.client.store_hints(
                        target,
                        [e[1] for e in entries],
                        [e[2] for e in entries],
                        [e[3] for e in entries],
                        [e[0] for e in entries],
                    )
            except (ShardDownError, ShardTimeoutError):
                holder.healthy = False
                self._m.hints_dropped.inc(len(entries))
                self._slots[target].stale = True
                continue
            stored_total += res["stored"]
            self._m.hints_stored.inc(res["stored"])
            if res["dropped"]:
                # Holder at capacity: the tail is gone for good, the
                # target will be behind even after its rejoin sync.
                self._m.hints_dropped.inc(res["dropped"])
                self._slots[target].stale = True
                self.events.warning(
                    "service.hints_dropped",
                    holder=holder_id,
                    target=target,
                    dropped=res["dropped"],
                )
            key = (holder_id, target)
            self._hint_counts[key] = (
                self._hint_counts.get(key, 0) + res["stored"]
            )
        self._m.hint_backlog.set(sum(self._hint_counts.values()))
        return stored_total

    # -- queries -----------------------------------------------------------

    def query_block(self, block_id: int) -> dict | None:
        """The freshest live snapshot (None for untracked blocks).

        Raises :class:`ShardDownError` only when *every* replica in
        the block's chain is out of the ring — the caller serves 503 +
        Retry-After rather than a stale or empty answer.
        """
        return self.query_block_ex(block_id)["snapshot"]

    def query_block_ex(self, block_id: int) -> dict:
        """Quorum read across the block's replica chain.

        Every live replica is asked; the freshest answer wins, where
        freshness is the per-block applied-observation count (replica
        seq streams are per-shard and not comparable).  The result is
        explicit about degradation: ``partial`` when fewer than R
        replicas answered, ``stale`` when every answering replica has
        known-dropped hints (its copy may be behind forever).  A
        replica that answered ``None`` simply does not track the block
        yet — a data answer from any replica outranks it.
        """
        chain = self._chain(int(block_id))
        self._m.queries.inc()
        answers: list[tuple[int, dict | None, bool]] = []
        for shard_id in chain:
            slot = self._slots[shard_id]
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    continue
                try:
                    snap = slot.client.query_block(block_id)
                except (ShardDownError, ShardTimeoutError):
                    slot.healthy = False
                    continue
            answers.append((shard_id, snap, slot.stale))
        if not answers:
            raise ShardDownError(
                f"all {len(chain)} replicas of block {block_id} "
                f"(shards {list(chain)}) are down"
            )
        # Prefer fresh (non-stale) replicas; fall back to stale ones
        # with the stale flag raised.
        fresh = [a for a in answers if not a[2]]
        candidates = fresh or answers
        best: dict | None = None
        for _, snap, _ in candidates:
            if snap is None:
                continue
            if best is None or (
                snap.get("n_observations", 0)
                > best.get("n_observations", 0)
            ):
                best = snap
        partial = len(answers) < len(chain)
        stale = not fresh
        if partial:
            self._m.reads_partial.inc()
        if stale:
            self._m.reads_stale.inc()
        return {
            "snapshot": best,
            "replication": len(chain),
            "replicas_answered": len(answers),
            "partial": partial,
            "stale": stale,
        }

    def phase_map(self) -> dict:
        """Merged diurnal phase map across healthy shards.

        Under replication a block appears on every live replica of its
        chain; the freshest entry (highest applied-observation count)
        wins the merge, so one dead shard costs nothing.  ``partial``
        is true only when enough shards are missing that some block
        may have lost its *entire* chain (``missing >= R``) — the map
        is still served (an outage monitor prefers a flagged partial
        answer over none), with the missing shards named.
        """
        self._m.queries.inc()
        blocks: dict[int, dict] = {}
        missing: list[int] = []
        for slot in self._slots:
            with slot.lock:
                if not slot.healthy or slot.client is None:
                    missing.append(slot.shard_id)
                    continue
                try:
                    shard_map = slot.client.phase_map()
                except (ShardDownError, ShardTimeoutError):
                    slot.healthy = False
                    missing.append(slot.shard_id)
                    continue
            for block_id, entry in shard_map.items():
                current = blocks.get(block_id)
                if current is None or (
                    entry.get("n_observations", 0)
                    > current.get("n_observations", 0)
                ):
                    blocks[block_id] = entry
        return {
            "blocks": blocks,
            "partial": len(missing) >= self.config.replication,
            "missing_shards": missing,
            "replication": self.config.replication,
        }

    def fleet_snapshot(self) -> dict:
        """Operational view: ring, per-shard health/stats, respawns."""
        shards = {}
        for slot in self._slots:
            entry: dict = {
                "healthy": slot.healthy,
                "respawns": slot.respawns,
                "paused": slot.paused,
                "stale": slot.stale,
            }
            with slot.lock:
                client = slot.client
                if slot.healthy and client is not None:
                    entry["pid"] = client.pid
                    try:
                        entry["stats"] = client.stats()
                    except (ShardDownError, ShardTimeoutError):
                        slot.healthy = False
                        entry["healthy"] = False
            shards[str(slot.shard_id)] = entry
        return {
            "run_id": self.run_id,
            "n_shards": self.config.n_shards,
            "replication": self.config.replication,
            "hint_backlog": sum(self._hint_counts.values()),
            "ring_replicas": self.config.ring_replicas,
            "seed": self.config.seed,
            "uptime_s": (
                time.monotonic() - self.started_monotonic
                if self.started_monotonic is not None
                else 0.0
            ),
            "respawns": self._supervisor.n_respawns,
            "alerts_firing": (
                self.alerts.firing() if self.alerts is not None else []
            ),
            "shards": shards,
        }

    def flush(self, close_partial: bool = False) -> dict:
        """Close every due window on every healthy shard (test/admin)."""
        out = {}
        for slot in self._slots:
            with slot.lock:
                if slot.healthy and slot.client is not None:
                    out[slot.shard_id] = slot.client.flush(close_partial)
        return out

    @property
    def healthy(self) -> bool:
        return self._running and all(s.healthy for s in self._slots)

    @property
    def running(self) -> bool:
        return self._running

    # -- telemetry ---------------------------------------------------------

    def fleet_registry(self):
        """Aggregate registry: every shard plus the runner's own."""
        with self._fleet_lock:
            return self.fleet.aggregate(self.metrics)

    def metrics_text(self) -> str:
        return prometheus_text(self.fleet_registry())

    def metrics_json(self) -> dict:
        snap = json_snapshot(self.fleet_registry())
        snap["service"] = {
            "run_id": self.run_id,
            "respawns": self._supervisor.n_respawns,
            "n_deltas": self.fleet.n_deltas,
        }
        return snap

    def _on_delta(self, delta) -> None:
        with self._fleet_lock:
            applied = self.fleet.apply(delta)
        if applied:
            for span_data in delta.spans:
                # Worker span trees (engine.ingest and friends) land as
                # local roots; they already carry the request trace_id
                # and name their shard.rpc parent, so trace_spans()
                # stitches them back under the HTTP request.
                self.tracer.graft(span_data)
            for record in delta.events:
                self.events.emit(record)
            if self.config.incidents is not None:
                flight = self._flights.get(delta.worker_id)
                if flight is None:
                    flight = FlightRecorder()
                    self._flights[delta.worker_id] = flight
                for record in delta.events:
                    flight.append(record)
                flight.sample(delta.metrics)

    def _init_history(self) -> None:
        """Build (or reload) the telemetry time-series store.

        A previous drain's persisted history seeds the new store, so a
        restart keeps the trend lines it was paged about; a corrupt or
        incompatible file is reported and replaced, never fatal.
        """
        if self.config.history is None:
            self.history = None
            return
        path = self.config.history_path
        if path.exists():
            try:
                self.history = MetricsHistory.load(
                    path, config=self.config.history
                )
                self.events.info(
                    "service.history_loaded",
                    path=str(path),
                    n_samples=self.history.n_samples,
                )
                return
            except (OSError, ValueError, KeyError, TypeError) as error:
                self.events.warning(
                    "service.history_load_failed",
                    path=str(path),
                    error=str(error),
                )
        self.history = MetricsHistory(self.config.history)

    def _record_history(self, registry, now: float,
                        force: bool = False) -> None:
        """One observation instant: fleet sample + derived series.

        The derived series exist nowhere in the aggregate — worker
        metrics are unlabeled sums — so the runner appends its own
        per-shard health flags and replication lag, gated on the same
        throttle decision as the registry sample (one instant, one
        timestamp, everything or nothing).
        """
        if self.history is None:
            return
        if not self.history.sample(registry, now, force=force):
            return
        try:
            counts = dict(self._hint_counts)
        except RuntimeError:
            # Lost the race with a concurrent resize; skip the lag
            # series this instant rather than stall the loop.
            counts = {}
        owed: dict[int, int] = {}
        for (_holder, target), n in counts.items():
            owed[target] = owed.get(target, 0) + n
        for slot in self._slots:
            shard = str(slot.shard_id)
            self.history.append(
                "service_shard_healthy", now,
                1.0 if slot.healthy else 0.0, labels={"shard": shard},
            )
            self.history.append(
                "service_shard_hint_lag", now,
                float(owed.get(slot.shard_id, 0)),
                labels={"shard": shard},
            )

    # -- supervision -------------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Chaos hook: hard-kill one shard (no drain, no journal flush).

        The supervision loop observes the death, respawns the worker,
        replays its journal, and rejoins it to the ring — exactly the
        path a production OOM kill takes.
        """
        slot = self._slots[shard_id]
        with slot.lock:
            slot.healthy = False
            if slot.client is not None:
                slot.client.kill()
        self.events.warning("service.shard_killed", shard_id=shard_id)

    def wait_healthy(self, timeout_s: float = 30.0) -> bool:
        """Block until every shard is back in the ring (tests/smoke)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.healthy:
                return True
            time.sleep(0.02)
        return self.healthy

    def _rejoin(self, shard_id: int) -> None:
        """SlotSupervisor rejoin hook: the shard is back in the ring."""
        self.events.info("service.shard_rejoined", shard_id=shard_id)

    # -- hinted handoff ----------------------------------------------------

    def _sync_hints(self, slot: _Slot, client: ShardClient) -> dict:
        """Drain every hint owed to a respawned shard, then heal it.

        Free-running rounds forward the bulk without blocking writers;
        the final round holds ``_ingest_lock`` so nothing can slip in
        between the last peek and the shard turning healthy — writers
        see a latency blip, never an error.  Forwards go through the
        normal ingest RPC, so the seq mask drops anything the shard's
        journal already had (e.g. the journaled prefix of a half-acked
        batch that was retro-hinted).
        """
        shard_id = slot.shard_id
        self._m.syncing.set(1)
        self.events.info("service.hint_sync_started", shard_id=shard_id)
        replayed = rounds = 0
        try:
            while rounds < 64:
                rounds += 1
                n = self._forward_hints(shard_id, client)
                replayed += n
                if n == 0:
                    break
            with self._ingest_lock:
                while True:
                    n = self._forward_hints(shard_id, client)
                    replayed += n
                    if n == 0:
                        break
                with slot.lock:
                    slot.healthy = True
                    slot.paused = False
        finally:
            self._m.syncing.set(0)
        self.events.info(
            "service.hint_sync_done",
            shard_id=shard_id,
            replayed=replayed,
            rounds=rounds,
        )
        return {"replayed": replayed, "rounds": rounds}

    def _forward_hints(self, target: int, client: ShardClient) -> int:
        """One sync round: peek every holder, merge by seq, forward,
        then ack (destructive only after the forward succeeded)."""
        collected: list[tuple[int, int, float, float]] = []
        acks: list[tuple[_Slot, int, int]] = []  # (holder, upto, count)
        for holder in self._slots:
            if holder.shard_id == target:
                continue
            with holder.lock:
                if not holder.healthy or holder.client is None:
                    continue
                try:
                    peek = holder.client.peek_hints(
                        target, self.config.max_batch
                    )
                except (ShardDownError, ShardTimeoutError):
                    holder.healthy = False
                    continue
            if peek["seqs"]:
                collected.extend(
                    zip(peek["seqs"], peek["block_ids"],
                        peek["times"], peek["values"])
                )
                acks.append((holder, peek["seqs"][-1], len(peek["seqs"])))
        if not collected:
            return 0
        collected.sort()
        n = len(collected)
        ids = np.asarray([c[1] for c in collected], dtype=np.int64)
        times = np.asarray([c[2] for c in collected], dtype=np.float64)
        values = np.asarray([c[3] for c in collected], dtype=np.float64)
        seqs = np.asarray([c[0] for c in collected], dtype=np.int64)
        for start in range(0, n, self.config.max_batch):
            end = min(start + self.config.max_batch, n)
            client.ingest(
                ids[start:end], times[start:end], values[start:end],
                seqs=seqs[start:end],
            )
        for holder, upto, count in acks:
            try:
                with holder.lock:
                    if not holder.healthy or holder.client is None:
                        continue
                    holder.client.ack_hints(target, upto)
            except (ShardDownError, ShardTimeoutError):
                holder.healthy = False
                continue
            key = (holder.shard_id, target)
            self._hint_counts[key] = max(
                0, self._hint_counts.get(key, 0) - count
            )
        self._m.hints_replayed.inc(n)
        self._m.hint_backlog.set(sum(self._hint_counts.values()))
        return n

    def _reap_held_hints(self, shard_id: int) -> None:
        """A dying shard takes its *held* hints with it: zero the
        mirror rows and mark the owed targets stale (their catch-up
        data is gone until an out-of-band anti-entropy pass)."""
        for (holder, target), count in list(self._hint_counts.items()):
            if holder != shard_id or count == 0:
                continue
            self._m.hints_dropped.inc(count)
            self._slots[target].stale = True
            self._hint_counts[(holder, target)] = 0
            self.events.warning(
                "service.hints_lost_with_holder",
                holder=holder,
                target=target,
                dropped=count,
            )
        self._m.hint_backlog.set(sum(self._hint_counts.values()))

    def _flush_all_hints(self) -> dict[int, int]:
        """Drain-time flush: no hint survives only in worker memory.

        Live targets get their hints through the normal ingest path
        (then drain their own journals as usual); dead targets get
        them appended straight into their on-disk journal with the
        seqs the runner already assigned, so the next start's replay
        recovers them.  Runs after supervision has stopped — no
        respawn can race the direct journal append.
        """
        flushed: dict[int, int] = {}
        for slot in self._slots:
            target = slot.shard_id
            total = 0
            alive = slot.healthy and slot.client is not None
            if alive:
                while True:
                    try:
                        n = self._forward_hints(target, slot.client)
                    except (ShardDownError, ShardTimeoutError):
                        slot.healthy = False
                        alive = False
                        break
                    total += n
                    if n == 0:
                        break
            if not alive:
                total += self._append_hints_to_journal(target)
            if total:
                flushed[target] = total
                self.events.info(
                    "service.hints_flushed", shard_id=target, n=total
                )
        return flushed

    def _append_hints_to_journal(self, target: int) -> int:
        """Write a dead shard's owed hints into its journal file.

        The worker is gone, so the file is free; the journal's own
        recovery truncates any torn tail and reports the high-water,
        and only seqs past it are appended — replay on the next start
        is then exactly the uninterrupted stream.
        """
        collected: list[tuple[int, int, float, float]] = []
        acks: list[tuple[_Slot, int, int]] = []
        for holder in self._slots:
            if holder.shard_id == target:
                continue
            with holder.lock:
                if not holder.healthy or holder.client is None:
                    continue
                try:
                    peek = holder.client.peek_hints(
                        target, self.config.hint_capacity
                    )
                except (ShardDownError, ShardTimeoutError):
                    holder.healthy = False
                    continue
            if peek["seqs"]:
                collected.extend(
                    zip(peek["seqs"], peek["block_ids"],
                        peek["times"], peek["values"])
                )
                acks.append((holder, peek["seqs"][-1], len(peek["seqs"])))
        if not collected:
            return 0
        collected.sort()
        journal = StreamJournal(
            self.config.journal_path(target), sync_every=None
        )
        try:
            keep = [c for c in collected if c[0] > journal.next_seq - 1]
            if keep:
                journal.append_many(
                    np.asarray([c[1] for c in keep], dtype=np.int64),
                    np.asarray([c[2] for c in keep], dtype=np.float64),
                    np.asarray([c[3] for c in keep], dtype=np.float64),
                    seqs=np.asarray([c[0] for c in keep], dtype=np.int64),
                )
            journal.flush()
        finally:
            journal.close()
        for holder, upto, count in acks:
            try:
                with holder.lock:
                    if holder.healthy and holder.client is not None:
                        holder.client.ack_hints(target, upto)
            except (ShardDownError, ShardTimeoutError):
                holder.healthy = False
                continue
            key = (holder.shard_id, target)
            self._hint_counts[key] = max(
                0, self._hint_counts.get(key, 0) - count
            )
        self._m.hints_replayed.inc(len(collected))
        self._m.hint_backlog.set(sum(self._hint_counts.values()))
        return len(collected)

    def _supervise_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        while not self._stop_event.wait(interval):
            for slot in self._slots:
                if self._stop_event.is_set():
                    return
                client = slot.client
                if client is None:
                    continue
                if slot.healthy:
                    self._supervisor.beat(
                        slot.shard_id, at=self._heartbeat[slot.shard_id]
                    )
                dead = not client.alive
                stale = (
                    not dead
                    and slot.healthy
                    and self._supervisor.stale(slot.shard_id)
                )
                if dead or stale or not slot.healthy:
                    # Unhealthy covers slots failed mid-RPC whose
                    # process still runs: the pipe state is torn, so
                    # reap and respawn either way.
                    self._respawn(slot, "crashed" if dead else "hung")
                elif (
                    not slot.settled
                    and time.monotonic() - slot.respawned_at
                    > self.config.settle_s
                ):
                    slot.settled = True
                    self._supervisor.mark_alive(slot.shard_id)
            self._evaluate_alerts()

    def _evaluate_alerts(self) -> None:
        """The per-cycle observe step: SLOs, history, alerts, incidents.

        One fleet aggregate is computed and shared by every consumer —
        the history sample, the alert evaluation, and any incident
        capture all describe the *same* instant, which is what lets an
        incident manifest's values be cross-checked against the
        history window it ships with.
        """
        self._update_slos()
        n_unhealthy = sum(1 for s in self._slots if not s.healthy)
        self._m.unhealthy.set(n_unhealthy)
        if (self.alerts is None and self.history is None
                and self.incidents is None):
            return
        now = time.time()
        registry = self.fleet_registry()
        self._record_history(registry, now)
        transitions = (
            self.alerts.evaluate(registry, self.history)
            if self.alerts is not None else ()
        )
        if self.incidents is not None and transitions:
            self.incidents.observe(
                transitions,
                flights=self._flights,
                registry=registry,
                now=now,
            )

    def _update_slos(self) -> None:
        """Fold request metrics into the SLO instruments, once per cycle.

        ``service_request_p99_seconds`` is the Prometheus-style quantile
        estimate over every ``service_request_seconds`` route histogram
        the HTTP layer has registered (lifetime buckets — monotone and
        cheap; the alert rule's ``for_cycles`` hysteresis supplies the
        windowing).  ``service_error_ratio`` is an EWMA meter fed the
        per-cycle 5xx/total delta — a burn rate, deliberately excluding
        429s, which are the backpressure contract working, not an error
        budget spend.
        """
        if not self._m.enabled:
            return
        hists = []
        errors = total = 0.0
        for metric in self.metrics.collect():
            if metric.name == "service_request_seconds":
                hists.append(metric)
            elif metric.name == "service_requests_total":
                total += metric.value
                if str(metric.labels.get("status", "")).startswith("5"):
                    errors += metric.value
        p99 = histogram_quantile(hists, 0.99)
        # nan = "no traffic yet"; the gauge reads 0.0 so JSON exports
        # stay strict-JSON-safe and the p99 alert cannot fire on idle.
        self._m.request_p99.set(0.0 if math.isnan(p99) else p99)
        d_errors = errors - self._last_requests[0]
        d_total = total - self._last_requests[1]
        self._last_requests = (errors, total)
        if d_total > 0:
            self._m.error_ratio.observe(d_errors / d_total)

    def _respawn(self, slot: _Slot, reason: str) -> None:
        shard_id = slot.shard_id
        (self._m.respawns_crashed if reason == "crashed"
         else self._m.respawns_hung).inc()
        self.events.warning(
            f"service.shard_{reason}",
            shard_id=shard_id,
            streak=self._supervisor.streak(shard_id) + 1,
        )
        with slot.lock:
            slot.healthy = False
            slot.paused = False
            if slot.client is not None:
                slot.client.kill()
                slot.client = None
        self._reap_held_hints(shard_id)
        self._m.unhealthy.set(sum(1 for s in self._slots if not s.healthy))
        delay = self._supervisor.respawn_delay(shard_id)
        if delay > 0:
            self.events.warning(
                "service.respawn_backoff", shard_id=shard_id, delay_s=delay
            )
            if self._stop_event.wait(delay):
                return
        client = self._spawn(shard_id)
        try:
            info = client.wait_ready()
        except (ShardDownError, ShardTimeoutError) as error:
            # The replacement died during recovery; leave the slot
            # unhealthy — the next supervision cycle tries again,
            # paced by the growing backoff streak.
            self.events.error(
                "service.shard_recovery_failed",
                shard_id=shard_id,
                error=str(error),
            )
            with slot.lock:
                slot.client = client  # dead client; alive=False re-triggers
            return
        if self.config.replication > 1:
            # Anti-entropy before rejoin: journal replay restored the
            # pre-kill state; the hints parked at surviving replicas
            # carry everything accepted since.  The shard turns
            # healthy *inside* the sync's final write-gated round, so
            # rejoin is zero-downtime and loses nothing.
            with slot.lock:
                slot.client = client  # sync RPCs need it; still unhealthy
            try:
                sync = self._sync_hints(slot, client)
            except (ShardDownError, ShardTimeoutError) as error:
                self.events.error(
                    "service.hint_sync_failed",
                    shard_id=shard_id,
                    error=str(error),
                )
                return  # dead/wedged client re-triggers the respawn path
        else:
            sync = None
            with slot.lock:
                slot.client = client
                slot.healthy = True
        with slot.lock:
            slot.respawns += 1
            slot.respawned_at = time.monotonic()
            slot.settled = False
        self._supervisor.respawned(shard_id)
        self._m.unhealthy.set(sum(1 for s in self._slots if not s.healthy))
        self.events.info(
            "service.shard_respawned",
            shard_id=shard_id,
            reason=reason,
            pid=info["pid"],
            n_replayed=info["n_replayed"],
            hints_replayed=sync["replayed"] if sync is not None else 0,
        )

    def _spawn(self, shard_id: int) -> ShardClient:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._heartbeat[shard_id] = time.monotonic()
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                child_conn,
                self._heartbeat,
                shard_id,
                self.config.shard_config(),
                str(self.config.journal_path(shard_id)),
            ),
            daemon=True,
            name=f"serve-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return ShardClient(
            shard_id,
            process,
            parent_conn,
            timeout_s=self.config.request_timeout_s,
            on_delta=self._on_delta if self.config.telemetry else None,
        )

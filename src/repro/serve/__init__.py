"""Sharded always-on diurnal service.

The batch pipeline answers "which blocks were asleep last month"; this
package answers "which blocks are asleep *right now*".  It runs the
streaming diurnal engine as a long-lived sharded service:

``ring``
    :class:`HashRing` — a seeded consistent-hash ring mapping block
    keys onto shard workers with minimal key movement on membership
    change (removing a node reproduces exactly the ring that never had
    it, so only the removed node's keys move).  ``lookup_chain`` walks
    the same ring into a replica chain: the first R *distinct* shards
    clockwise of a key, with a membership-stable prefix.
``shard``
    The shard worker process: each shard owns a
    :class:`~repro.stream.engine.StreamEngine` behind an
    :class:`~repro.stream.overload.AdmissionController` and writes a
    per-shard :class:`~repro.stream.journal.StreamJournal` *before*
    admitting observations, so a crashed shard recovers by journal
    replay.  Replicated batches carry destination-stream sequence
    numbers that the worker masks against its journal high-water
    (idempotent re-sends), and each worker keeps bounded hint queues
    for dead peers.  :class:`ShardClient` is the supervisor-side RPC
    handle.
``runner``
    :class:`ServiceRunner` — spawns the shards, routes ingest and
    queries through the ring (``replication`` R fans every write to R
    replicas in parallel, parks copies owed to dead replicas as hinted
    handoff, and answers reads from the freshest replica with explicit
    ``partial``/``stale`` degradation), supervises heartbeats (dead or
    hung shards are reaped, respawned, journal-replayed, hint-synced,
    and rejoined to the ring with zero client-visible downtime),
    aggregates fleet telemetry, and drains gracefully (hint queues
    flushed, admission queues pumped dry, windows closed, journals
    fsynced, final manifest written) on shutdown.
``api``
    :class:`ServiceAPI` — a stdlib-only asyncio HTTP layer: ``POST
    /observations`` (429 + Retry-After under backpressure), ``GET
    /blocks/{key}/state``, ``GET /phase-map``, ``GET /fleet``, ``GET
    /metrics`` (Prometheus or JSON), ``GET /healthz``, and the opt-in
    ``GET /debug/profile`` (collapsed-stack sampling profiler).  Every
    request is traced end to end (W3C ``traceparent`` in/out,
    ``X-Request-Id`` on every response, ``http.request → route →
    shard.rpc → engine.ingest`` as one span tree), counted into
    per-route latency histograms, and access-logged.

``python -m repro.serve`` launches the whole stack from the command
line; the correctness anchor is unchanged from the rest of the repo:
every served verdict is bit-identical to
:func:`repro.core.classify.classify_series` over the same window, even
across a shard kill/respawn/replay cycle.
"""

from repro.serve.api import ServiceAPI
from repro.serve.ring import HashRing
from repro.serve.runner import (
    ServiceConfig,
    ServiceRunner,
    ShardDownError,
)
from repro.serve.shard import ShardClient, ShardConfig, snapshot_to_dict

__all__ = [
    "HashRing",
    "ServiceAPI",
    "ServiceConfig",
    "ServiceRunner",
    "ShardClient",
    "ShardConfig",
    "ShardDownError",
    "snapshot_to_dict",
]

"""Seeded consistent-hash ring for block-to-shard placement.

A sharded service needs a placement function with three properties:

* **deterministic** — every router instance, across restarts and
  processes, must agree where a block lives.  Python's built-in
  ``hash`` is salted per process, so points come from
  :func:`hashlib.blake2b` keyed by an explicit seed instead;
* **balanced** — each node owns many small arcs (``replicas`` virtual
  points per node), so key load spreads within a few percent of even;
* **minimal movement** — the point set of a node is a pure function of
  ``(seed, node)``, independent of the other members.  Removing a node
  therefore yields *exactly* the ring that never contained it, and the
  only keys that move on a membership change are the ones owned by the
  arcs that appeared or vanished — the classic ≤ K/N consistent-hashing
  bound (``tests/test_serve_ring.py`` proves both properties).

Keys and nodes are arbitrary ints or strings; lookups are
``O(log(nodes × replicas))`` bisections.
"""

from __future__ import annotations

import bisect
import hashlib
import struct

__all__ = ["HashRing"]

_SPACE_BITS = 64


def _hash64(seed: int, payload: bytes) -> int:
    """64-bit position in the ring space, keyed by the seed."""
    digest = hashlib.blake2b(
        payload,
        digest_size=8,
        key=struct.pack("<q", seed),
    ).digest()
    return int.from_bytes(digest, "little")


def _encode(value: int | str) -> bytes:
    """Stable byte encoding; ints and strings live in disjoint spaces."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise TypeError(
            f"ring keys/nodes must be int or str, got {type(value).__name__}"
        )
    if isinstance(value, int):
        return b"i" + value.to_bytes(16, "little", signed=True)
    return b"s" + value.encode("utf-8")


class HashRing:
    """Consistent-hash ring over a set of nodes.

    Attributes:
        seed: hash seed; two rings with the same seed, replicas, and
            membership agree on every lookup.
        replicas: virtual points per node (more points, better balance,
            larger point table).
    """

    def __init__(self, nodes=(), replicas: int = 128, seed: int = 0) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.seed = seed
        self.replicas = replicas
        self._nodes: set = set()
        # Sorted, parallel: _points[i] is owned by _owners[i].
        self._points: list[int] = []
        self._owners: list = []
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    def _node_points(self, node) -> list[tuple[int, object]]:
        base = _encode(node)
        return [
            (_hash64(self.seed, base + struct.pack("<I", replica)), node)
            for replica in range(self.replicas)
        ]

    def add(self, node) -> None:
        """Add a member; its points are independent of other members."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already in the ring")
        self._nodes.add(node)
        merged = sorted(
            list(zip(self._points, self._owners)) + self._node_points(node),
            key=lambda pair: (pair[0], _encode(pair[1])),
        )
        self._points = [point for point, _ in merged]
        self._owners = [owner for _, owner in merged]

    def remove(self, node) -> None:
        """Remove a member; the result equals a ring never containing it."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} is not in the ring")
        self._nodes.remove(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    @property
    def nodes(self) -> list:
        """Current members, sorted by their encoded identity."""
        return sorted(self._nodes, key=_encode)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    # -- lookups -----------------------------------------------------------

    def key_point(self, key) -> int:
        """The key's position in the 64-bit ring space."""
        return _hash64(self.seed, b"k" + _encode(key))

    def lookup(self, key):
        """The node owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("cannot look up a key in an empty ring")
        i = bisect.bisect_right(self._points, self.key_point(key))
        if i == len(self._points):
            i = 0  # wrap: the first point owns the top arc
        return self._owners[i]

    def lookup_chain(self, key, n: int) -> list:
        """The first ``n`` *distinct* nodes clockwise of ``key``.

        Preference order for replicated placement: entry 0 is
        :meth:`lookup`'s owner, later entries are the successors a
        replica (or a failover read) would use.  Distinctness is over
        *physical* nodes — a node's many virtual points can never make
        it appear twice.  The walk is a pure function of ``(seed,
        membership, key)``, and because each node's point set is
        independent of the others, removing a node that is *not* in a
        key's chain leaves that chain untouched, while removing a
        member that is simply deletes its entry and pulls the next
        successor in — the prefix before it is stable
        (``tests/test_serve_ring.py`` proves both properties).  When
        ``n`` exceeds the membership the whole membership is returned:
        a chain is a preference order, never padded.
        """
        if n < 1:
            raise ValueError("n must be at least 1")
        if not self._points:
            raise LookupError("cannot look up a key in an empty ring")
        start = bisect.bisect_right(self._points, self.key_point(key))
        chain: list = []
        seen: set = set()
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                chain.append(owner)
                if len(chain) == n or len(chain) == len(self._nodes):
                    break
        return chain

    def assignments(self, keys) -> dict:
        """Map each key to its owner (convenience for tests/rebalance)."""
        return {key: self.lookup(key) for key in keys}

    def load(self, keys) -> dict:
        """Keys-per-node histogram over ``keys`` (every member present)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

"""``python -m repro.serve`` — launch the sharded diurnal service.

Runs the full stack: shard worker processes behind a seeded hash
ring, a supervision thread that respawns dead shards from their
journals, and the asyncio HTTP API.  SIGTERM/SIGINT trigger the
graceful drain (queues pumped dry, windows closed, journals fsynced,
final manifest written) before exit.

``--smoke`` runs a self-contained end-to-end check instead of serving
forever: bind an ephemeral port, ingest a synthetic diurnal burst over
HTTP (asserting the traced request comes back with ``X-Request-Id`` /
``traceparent``), verify block-state and phase-map queries answer,
assert ``/dashboard`` serves sparklines and ``/metrics/history`` a
well-formed window, pull a collapsed-stack profile when ``--profile``
is armed, drain, and exit 0 — the CI service job's entry point.

``--event-log PATH`` appends the structured JSONL event stream
(including per-request ``http.access`` records) to a file instead of
stderr; ``--profile`` arms ``GET /debug/profile``.  Telemetry history
is on by default (``--history-raw-capacity`` / ``--history-max-series``
size it, ``--no-history`` disables); ``--incident-dir DIR`` arms
alert-triggered incident capture into ``DIR``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import signal
import sys
from http.client import HTTPConnection
from pathlib import Path

from repro.obs.alerts import default_service_rules
from repro.obs.events import EventLogger
from repro.obs.history import HistoryConfig
from repro.obs.incidents import IncidentConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serve.api import ServiceAPI
from repro.serve.runner import ServiceConfig, ServiceRunner
from repro.stream.engine import StreamConfig
from repro.stream.overload import OverloadConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on sharded diurnal classification service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8000,
        help="listen port (0 binds an ephemeral port)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="shard worker processes (each owns a ring arc + journal)",
    )
    parser.add_argument(
        "--replication", type=int, default=1,
        help="replicas per block (R); R > 1 keeps every key readable "
             "and writable through R-1 shard deaths via quorum reads "
             "and hinted handoff",
    )
    parser.add_argument(
        "--journal-dir", default="service-journals",
        help="directory for per-shard write-ahead journals + manifest",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="ring placement + shed-policy seed",
    )
    parser.add_argument(
        "--window-days", type=float, default=7.0,
        help="classification window span in days",
    )
    parser.add_argument(
        "--hop-days", type=float, default=None,
        help="window hop in days (default: tumbling)",
    )
    parser.add_argument(
        "--round-s", type=float, default=660.0,
        help="probing round duration in seconds (paper: 660)",
    )
    parser.add_argument(
        "--capacity", type=int, default=4096,
        help="per-shard admission queue capacity",
    )
    parser.add_argument(
        "--shard-deadline-s", type=float, default=5.0,
        help="heartbeat staleness before a wedged shard is respawned",
    )
    parser.add_argument(
        "--history-raw-capacity", type=int, default=512,
        help="full-resolution telemetry samples retained per series",
    )
    parser.add_argument(
        "--history-max-series", type=int, default=512,
        help="telemetry series the history store will track",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="disable the telemetry time-series store "
             "(/metrics/history and /dashboard answer 404)",
    )
    parser.add_argument(
        "--incident-dir", default=None, metavar="DIR",
        help="enable alert-triggered incident capture: correlated "
             "bundles (history windows, event tail, flight recorders, "
             "trace ids) land in DIR/<ts>-<rule>/",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the end-to-end smoke check and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress structured event output on stderr",
    )
    parser.add_argument(
        "--event-log", default=None, metavar="PATH",
        help="append the structured JSONL event/access log to PATH "
             "(default: stderr unless --quiet)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="arm GET /debug/profile (sampling wall-clock profiler)",
    )
    return parser


def _service_config(args) -> ServiceConfig:
    stream = StreamConfig.for_days(
        args.window_days, hop_days=args.hop_days, round_s=args.round_s
    )
    history = None
    if not args.no_history:
        history = HistoryConfig(
            raw_capacity=args.history_raw_capacity,
            max_series=args.history_max_series,
        )
    incidents = None
    if args.incident_dir:
        incidents = IncidentConfig(dir=args.incident_dir)
    return ServiceConfig(
        stream=stream,
        journal_dir=args.journal_dir,
        n_shards=args.shards,
        replication=args.replication,
        overload=OverloadConfig(capacity=args.capacity, seed=args.seed),
        seed=args.seed,
        shard_deadline_s=args.shard_deadline_s,
        history=history,
        incidents=incidents,
    )


def _build_runner(args) -> ServiceRunner:
    if args.event_log:
        events = EventLogger(sink=args.event_log)
    elif args.quiet:
        events = EventLogger()
    else:
        events = EventLogger(sink=sys.stderr)
    return ServiceRunner(
        _service_config(args),
        metrics=MetricsRegistry(),
        events=events,
        alert_rules=default_service_rules(),
        tracer=Tracer(),
    )


async def _serve(args) -> int:
    runner = _build_runner(args)
    runner.start()
    api = ServiceAPI(
        runner, host=args.host, port=args.port,
        enable_profiler=args.profile,
    )
    await api.start()
    print(
        f"serving on http://{args.host}:{api.port} "
        f"({args.shards} shards, journals in {args.journal_dir})",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("draining...", flush=True)
    await api.stop()
    report = await loop.run_in_executor(None, runner.stop)
    if report is not None:
        print(f"final manifest: {report['manifest_path']}", flush=True)
    return 0


def _smoke_ingest_payload(n_blocks: int, hours: int, round_s: float) -> list:
    """Synthetic fleet: even blocks diurnal, odd blocks flat."""
    observations = []
    per_hour = max(1, int(3600 / round_s))
    for hour in range(hours):
        for slot in range(per_hour):
            t = hour * 3600.0 + slot * round_s
            day_phase = 2.0 * math.pi * (t / 86400.0)
            for block in range(n_blocks):
                if block % 2 == 0:
                    value = 60.0 + 25.0 * math.cos(day_phase)
                else:
                    value = 60.0
                observations.append([block, t, value])
    return observations


def _smoke(args) -> int:
    """End-to-end check over real HTTP; exit 0 only on full success."""
    args = argparse.Namespace(**vars(args))
    args.round_s = 3600.0
    args.window_days = 1.0
    args.hop_days = None
    runner = _build_runner(args)
    runner.start()
    api = ServiceAPI(
        runner, host=args.host, port=0, enable_profiler=args.profile
    )

    async def _run() -> int:
        await api.start()
        loop = asyncio.get_running_loop()

        def request(method, path, body=None):
            conn = HTTPConnection(args.host, api.port, timeout=60)
            try:
                conn.request(
                    method, path,
                    body=json.dumps(body) if body is not None else None,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                return (
                    response.status,
                    response.read(),
                    {k.lower(): v for k, v in response.getheaders()},
                )
            finally:
                conn.close()

        failures = []
        observations = _smoke_ingest_payload(
            n_blocks=8, hours=30, round_s=3600.0
        )
        status, raw, headers = await loop.run_in_executor(
            None, request, "POST", "/observations",
            {"observations": observations},
        )
        report = json.loads(raw)
        if status != 200 or report["accepted"] != len(observations):
            failures.append(f"ingest: status={status} report={report}")
        request_id = headers.get("x-request-id", "")
        traceparent = headers.get("traceparent", "")
        if len(request_id) != 16 or request_id not in traceparent:
            failures.append(
                f"tracing: request_id={request_id!r} "
                f"traceparent={traceparent!r}"
            )
        await loop.run_in_executor(None, runner.flush)
        status, raw, _ = await loop.run_in_executor(
            None, request, "GET", "/blocks/0/state"
        )
        state = json.loads(raw)
        if status != 200 or state.get("stable_label") is None:
            failures.append(f"block state: status={status} state={state}")
        status, raw, _ = await loop.run_in_executor(
            None, request, "GET", "/phase-map"
        )
        phase_map = json.loads(raw)
        if status != 200 or not phase_map["blocks"]:
            failures.append(f"phase map: status={status} map={phase_map}")
        status, raw, _ = await loop.run_in_executor(
            None, request, "GET", "/metrics"
        )
        if status != 200 or b"stream_observations_total" not in raw:
            failures.append(f"metrics: status={status}")
        if b"service_request_seconds_bucket" not in raw:
            failures.append("metrics: no service_request_seconds histogram")
        status, raw, headers = await loop.run_in_executor(
            None, request, "GET", "/healthz"
        )
        health = json.loads(raw)
        if status != 200:
            failures.append(f"healthz: status={status}")
        if health.get("replication") != args.replication or \
                "stale" not in health:
            failures.append(f"healthz: replication fields missing {health}")
        if not args.no_history:
            # Sparklines need >= 2 samples; the store throttles to one
            # per 0.25s, so give the supervision loop a moment.
            for _ in range(40):
                if runner.history is not None and \
                        runner.history.n_samples >= 2:
                    break
                await asyncio.sleep(0.1)
            status, raw, headers = await loop.run_in_executor(
                None, request, "GET", "/dashboard"
            )
            body = raw.decode()
            if (
                status != 200
                or "text/html" not in headers.get("content-type", "")
                or "<svg" not in body
                or "<polyline" not in body
            ):
                failures.append(
                    f"dashboard: status={status} "
                    f"html={len(raw)}B sparklines="
                    f"{body.count('<polyline')}"
                )
            status, raw, _ = await loop.run_in_executor(
                None, request, "GET",
                "/metrics/history"
                "?series=service_ingest_observations_total&window=600",
            )
            window = json.loads(raw)
            points = (
                window["series"][0]["points"]
                if window.get("series") else []
            )
            if (
                status != 200
                or window.get("window") != 600.0
                or not points
                or not all("t" in p and "mean" in p for p in points)
            ):
                failures.append(
                    f"metrics history: status={status} window={window}"
                )
        if args.profile:
            status, raw, _ = await loop.run_in_executor(
                None, request, "GET", "/debug/profile?seconds=1"
            )
            collapsed = raw.decode()
            if status != 200 or ";" not in collapsed:
                failures.append(
                    f"profile: status={status} bytes={len(raw)}"
                )
            else:
                profile_path = Path(args.journal_dir) / "profile.collapsed"
                profile_path.write_text(collapsed)
                print(f"profile: {profile_path}", flush=True)
        await api.stop()
        report = await loop.run_in_executor(None, runner.stop)
        if report is None or not all(
            shard.get("drained") for shard in report["shards"].values()
        ):
            failures.append(f"drain: report={report}")
        if args.event_log:
            log_text = Path(args.event_log).read_text() \
                if Path(args.event_log).exists() else ""
            if '"event": "http.access"' not in log_text:
                failures.append(
                    f"event log: no http.access records in {args.event_log}"
                )
        for failure in failures:
            print(f"SMOKE FAIL {failure}", file=sys.stderr)
        if not failures:
            print(
                f"smoke ok: {len(observations)} observations, "
                f"{args.shards} shards, clean drain", flush=True,
            )
        return 1 if failures else 0

    return asyncio.run(_run())


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.smoke:
        return _smoke(args)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())

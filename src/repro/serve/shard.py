"""The shard worker: one process owning a slice of the block space.

Each shard runs the full streaming stack for the blocks the hash ring
assigns it: a :class:`~repro.stream.engine.StreamEngine` behind an
:class:`~repro.stream.overload.AdmissionController`, fed write-ahead
through a per-shard :class:`~repro.stream.journal.StreamJournal`.  The
ordering is the durability contract: an observation batch is **framed
into the journal before it is offered to the admission queue**, so a
shard killed at any instant recovers by replaying its journal into a
fresh engine — the replay goes through the same controller ``ingest``
path, and because an unloaded controller is a direct delegation, the
recovered engine state is bit-identical to an uninterrupted run over
the same admitted observations.

Under replication the runner assigns every observation copy a sequence
number from the *destination* shard's stream and ships it with the
batch; the worker masks any seq at or below its journal high-water
before journaling, so a retried or re-forwarded batch (hinted handoff,
a retro-hinted tail of a half-acked RPC) is idempotent — duplicates
are dropped exactly where the durability record lives.  Each worker
also keeps bounded in-memory **hint queues**: observation copies owed
to a dead peer shard, stored here because this worker is the first
live replica in that observation's chain.  The supervisor drains them
with ``peek_hints`` / ``ack_hints`` (destructive only after the
forward succeeded) when the peer rejoins.

The worker speaks a small pickled request/response protocol over the
supervisor pipe (``ingest`` / ``query_block`` / ``phase_map`` /
``store_hints`` / ``peek_hints`` / ``ack_hints`` /
``stats`` / ``flush`` / ``drain`` / ``stop``), refreshes a shared
heartbeat slot every loop so the supervisor's staleness deadline can
reap a wedged shard, and ships a
:class:`~repro.obs.distributed.TelemetryDelta` with every reply — the
same ride-the-result-channel idiom the pool uses, so fleet metric
totals always equal the work the supervisor actually heard about.

Graceful drain ordering (the clean-stop contract): ``drain`` first
pumps the admission queue dry, then flushes the engine (closing every
due window), then flushes **and fsyncs** the journal — only after the
reply does the supervisor send ``stop``, so a clean shutdown can never
leave a torn journal tail or a half-admitted queue behind.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import asdict, dataclass, field
from math import isnan

import numpy as np

from repro.core.classify import DiurnalClass, DiurnalReport
from repro.faults.crash import crashpoint
from repro.obs.distributed import WorkerTelemetry
from repro.obs.tracing import NULL_TRACER, TraceContext
from repro.stream.engine import ProvisionalEstimate, StreamConfig, StreamEngine
from repro.stream.journal import StreamJournal, replay_journal
from repro.stream.overload import AdmissionController, OverloadConfig

__all__ = [
    "ShardClient",
    "ShardConfig",
    "ShardDownError",
    "ShardTimeoutError",
    "snapshot_to_dict",
]


class ShardDownError(RuntimeError):
    """The shard's worker process is dead or its pipe is closed."""


class ShardTimeoutError(RuntimeError):
    """The shard did not answer a request within the deadline."""


@dataclass(frozen=True)
class ShardConfig:
    """Per-shard streaming stack configuration (picklable).

    Attributes:
        stream: engine grid/window/classifier knobs, shared by every
            shard so verdicts are placement-independent.
        overload: admission-queue bounds and shed policy.
        journal_sync_every: observations between journal fsyncs
            (``None`` fsyncs only on flush/drain).
        pump_budget: queued observations serviced per ingest request
            and per idle heartbeat cycle; offered load beyond this rate
            accumulates in the admission queue and eventually asserts
            backpressure.
        heartbeat_interval_s: worker loop poll granularity (and the
            rate the shared heartbeat slot refreshes at).
        hint_capacity: total hinted observations this worker will hold
            for dead peers before refusing further stores (the runner
            marks the starved peer stale — degradation is explicit,
            never silent memory growth).
        telemetry: run the shard instrumented and ship deltas.
    """

    stream: StreamConfig
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    journal_sync_every: int | None = 256
    pump_budget: int = 2048
    heartbeat_interval_s: float = 0.05
    hint_capacity: int = 65536
    telemetry: bool = True

    def __post_init__(self) -> None:
        if self.journal_sync_every is not None and self.journal_sync_every < 1:
            raise ValueError("journal_sync_every must be positive")
        if self.pump_budget < 1:
            raise ValueError("pump_budget must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.hint_capacity < 1:
            raise ValueError("hint_capacity must be positive")


def _clean_float(value) -> float | None:
    """JSON-safe float: NaN becomes None (JSON has no NaN literal)."""
    value = float(value)
    return None if isnan(value) else value


def _report_to_dict(report: DiurnalReport | None) -> dict | None:
    if report is None:
        return None
    out = asdict(report)
    out["label"] = report.label.value
    for key in (
        "diurnal_amplitude",
        "dominant_cycles_per_day",
        "strongest_other",
        "strongest_harmonic",
        "phase",
    ):
        out[key] = _clean_float(out[key])
    return out


def snapshot_to_dict(snapshot: dict | None) -> dict | None:
    """Flatten :meth:`StreamEngine.snapshot` output for JSON transport.

    Engine-native objects (:class:`DiurnalClass`,
    :class:`DiurnalReport`, :class:`ProvisionalEstimate`) become plain
    dicts/strings; NaN floats become ``null`` so the payload is valid
    strict JSON.
    """
    if snapshot is None:
        return None
    out = dict(snapshot)
    label = out.get("stable_label")
    if isinstance(label, DiurnalClass):
        out["stable_label"] = label.value
    out["last_report"] = _report_to_dict(out.get("last_report"))
    prov = out.get("provisional")
    if isinstance(prov, ProvisionalEstimate):
        prov_dict = asdict(prov)
        for key in (
            "mean",
            "diurnal_amplitude",
            "diurnal_phase",
            "strongest_harmonic",
        ):
            prov_dict[key] = _clean_float(prov_dict[key])
        out["provisional"] = prov_dict
    return out


# -- worker process ----------------------------------------------------------


def _shard_main(
    conn,
    heartbeat,
    shard_id: int,
    config: ShardConfig,
    journal_path: str,
) -> None:
    """Worker loop: recover from the journal, then serve requests.

    Startup is recovery: open the journal (torn tail truncated), replay
    every intact record through the admission controller into a fresh
    engine, and only then report ``("ready", info)`` — a shard is never
    in the ring with partial state.
    """
    telem = WorkerTelemetry(shard_id) if config.telemetry else None
    registry = telem.registry if telem is not None else None
    events = telem.events if telem is not None else None
    engine = StreamEngine(config.stream, metrics=registry, events=events)
    controller = AdmissionController(
        engine, config.overload, metrics=registry, events=events
    )
    journal = StreamJournal(
        journal_path,
        sync_every=config.journal_sync_every,
        metrics=registry,
    )
    n_replayed = replay_journal(journal_path, controller)
    # Hinted handoff: observation copies owed to dead peer shards,
    # keyed by the peer's shard id, each entry (seq, block, time,
    # value) in the peer's own sequence stream.  Memory-resident by
    # design — the copy is already durable in *this* shard's journal;
    # the hint only shortens the peer's catch-up (see DESIGN.md for
    # the double-failure caveat).
    hints: dict[int, list[tuple[int, int, float, float]]] = {}
    hint_gauge = (
        registry.gauge("shard_hint_backlog") if registry is not None else None
    )

    def _hint_backlog() -> int:
        return sum(len(bucket) for bucket in hints.values())

    def _set_hint_gauge() -> None:
        if hint_gauge is not None:
            hint_gauge.set(_hint_backlog())

    conn.send(
        (
            "ready",
            {
                "shard_id": shard_id,
                "pid": os.getpid(),
                "n_replayed": n_replayed,
                "recovered_records": journal.recovery.n_records,
                "truncated_bytes": journal.recovery.truncated_bytes,
                "last_seq": journal.next_seq - 1,
            },
        )
    )

    def _stats() -> dict:
        stats = controller.stats()
        stats.update(
            shard_id=shard_id,
            pid=os.getpid(),
            n_blocks=len(engine.blocks()),
            n_invalid=engine.n_invalid,
            journal_last_seq=journal.next_seq - 1,
            n_replayed=n_replayed,
            hint_backlog=_hint_backlog(),
        )
        return stats

    tracer = telem.tracer if telem is not None else NULL_TRACER

    def _handle(op: str, args: tuple):
        if op == "ingest":
            block_ids, times, values, seqs, trace_ctx = args
            parent = (
                TraceContext(**trace_ctx) if trace_ctx is not None else None
            )
            n_duplicates = 0
            if seqs is not None:
                # Idempotence mask: anything at or below the journal
                # high-water is already durable here (a half-acked RPC
                # the runner retro-hinted, or a hint replayed twice).
                # Dropping it *before* the write-ahead keeps replay and
                # the live engine in exact agreement.
                keep = np.asarray(seqs, dtype=np.int64) > journal.next_seq - 1
                n_duplicates = int(len(seqs) - keep.sum())
                if n_duplicates:
                    block_ids = block_ids[keep]
                    times = times[keep]
                    values = values[keep]
                    seqs = np.asarray(seqs, dtype=np.int64)[keep]
            # The shard-side leaf of the request span tree: the ingest
            # work (journal write-ahead + admission + pump) under the
            # supervisor's shard.rpc span.  The span (and the event it
            # stamps) ships home on this reply's telemetry delta.
            with tracer.trace(
                "engine.ingest",
                parent_context=parent,
                shard_id=shard_id,
                n=int(len(times)),
            ):
                # Write-ahead: the batch must reach the OS before
                # admission (settle), or a SIGKILL loses acked
                # observations from the user-space buffer; fsync stays
                # on the sync_every cadence.
                journal.append_many(block_ids, times, values, seqs=seqs)
                journal.settle()
                crashpoint("serve.shard.journaled")
                submit = controller.submit
                for block_id, time_s, value in zip(block_ids, times, values):
                    submit(int(block_id), float(time_s), float(value))
                controller.pump(config.pump_budget)
                if parent is not None and events is not None:
                    # One correlated record per traced ingest RPC: the
                    # event-log line whose span id resolves to the
                    # engine.ingest node of the request's span tree.
                    events.info(
                        "shard.ingest",
                        n=int(len(times)),
                        depth=controller.depth,
                        last_seq=journal.next_seq - 1,
                    )
            return {
                "accepted": int(len(times)),
                "n_duplicates": n_duplicates,
                "depth": controller.depth,
                "paused": controller.backpressure(),
                "n_shed": controller.n_shed,
                "last_seq": journal.next_seq - 1,
            }
        if op == "store_hints":
            target, h_ids, h_times, h_values, h_seqs = args
            bucket = hints.setdefault(int(target), [])
            room = config.hint_capacity - _hint_backlog()
            incoming = list(
                zip(
                    (int(s) for s in h_seqs),
                    (int(b) for b in h_ids),
                    (float(t) for t in h_times),
                    (float(v) for v in h_values),
                )
            )
            stored = incoming[: max(0, room)]
            if stored:
                # Stores normally arrive in seq order per target (the
                # runner assigns under its ingest lock); a retro-hinted
                # tail after a flap is the one case that can land out
                # of order, so re-sort only when it actually did.
                out_of_order = bool(bucket) and bucket[-1][0] > stored[0][0]
                bucket.extend(stored)
                if out_of_order:
                    bucket.sort()
            _set_hint_gauge()
            return {
                "stored": len(stored),
                "dropped": len(incoming) - len(stored),
                "backlog": _hint_backlog(),
            }
        if op == "peek_hints":
            target, max_n = args
            bucket = hints.get(int(target), [])
            batch = bucket[: int(max_n)]
            return {
                "seqs": [h[0] for h in batch],
                "block_ids": [h[1] for h in batch],
                "times": [h[2] for h in batch],
                "values": [h[3] for h in batch],
                "remaining": len(bucket) - len(batch),
            }
        if op == "ack_hints":
            target, upto_seq = args
            bucket = hints.get(int(target))
            acked = 0
            if bucket:
                kept = [h for h in bucket if h[0] > int(upto_seq)]
                acked = len(bucket) - len(kept)
                if kept:
                    hints[int(target)] = kept
                else:
                    del hints[int(target)]
                _set_hint_gauge()
            return {"acked": acked, "backlog": _hint_backlog()}
        if op == "query_block":
            (block_id,) = args
            snapshot = snapshot_to_dict(engine.snapshot(block_id))
            if snapshot is not None:
                snapshot["shard_id"] = shard_id
            return snapshot
        if op == "phase_map":
            return engine.phase_map()
        if op == "stats":
            return _stats()
        if op == "flush":
            (close_partial,) = args
            controller.flush(close_partial=close_partial)
            journal.flush()
            return _stats()
        if op == "drain":
            # Clean-stop ordering: queue dry -> windows closed ->
            # journal flushed and fsynced.  Only then is it safe for
            # the supervisor to send "stop".
            controller.pump()
            engine.flush()
            journal.flush()
            crashpoint("serve.shard.drained")
            return _stats()
        raise ValueError(f"unknown shard op {op!r}")

    try:
        while True:
            heartbeat[shard_id] = time.monotonic()
            if not conn.poll(config.heartbeat_interval_s):
                if controller.depth:
                    controller.pump(config.pump_budget)
                continue
            message = conn.recv()
            if message is None or message[0] == "stop":
                journal.close()
                return
            op, args = message[0], message[1:]
            try:
                payload = _handle(op, args)
            except Exception as error:  # surfaced supervisor-side
                conn.send(("err", type(error).__name__, str(error), None))
                continue
            delta = telem.cut_delta() if telem is not None else None
            conn.send(("ok", payload, delta))
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


# -- supervisor-side handle --------------------------------------------------


class ShardClient:
    """Synchronous RPC handle for one shard worker process.

    One request is in flight per shard at a time (the pipe is a serial
    channel); concurrent callers — asyncio handlers offloaded to the
    executor pool, the supervision thread — serialize on the client
    lock.  A dead or closed pipe raises :class:`ShardDownError`; a
    worker that does not answer within ``timeout_s`` raises
    :class:`ShardTimeoutError` (the supervisor's staleness deadline
    will reap it).  ``on_delta`` receives every shipped telemetry
    delta (the runner feeds them to its
    :class:`~repro.obs.distributed.FleetView`).
    """

    def __init__(
        self,
        shard_id: int,
        process,
        conn,
        timeout_s: float = 30.0,
        on_delta=None,
    ) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.timeout_s = timeout_s
        self.on_delta = on_delta
        self.ready_info: dict | None = None
        self._lock = threading.Lock()

    def wait_ready(self, timeout_s: float | None = None) -> dict:
        """Block until the worker finishes journal recovery."""
        timeout = self.timeout_s if timeout_s is None else timeout_s
        with self._lock:
            try:
                if not self.conn.poll(timeout):
                    raise ShardTimeoutError(
                        f"shard {self.shard_id} not ready after {timeout}s"
                    )
                kind, info = self.conn.recv()
            except (EOFError, OSError) as error:
                raise ShardDownError(
                    f"shard {self.shard_id} died during recovery"
                ) from error
        if kind != "ready":
            raise ShardDownError(
                f"shard {self.shard_id} sent {kind!r} before ready"
            )
        self.ready_info = info
        return info

    def request(self, op: str, *args):
        with self._lock:
            try:
                self.conn.send((op, *args))
                if not self.conn.poll(self.timeout_s):
                    raise ShardTimeoutError(
                        f"shard {self.shard_id} did not answer {op!r} "
                        f"within {self.timeout_s}s"
                    )
                reply = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as error:
                raise ShardDownError(
                    f"shard {self.shard_id} is down (pipe error on {op!r})"
                ) from error
        if reply[0] == "err":
            _, error_type, message, _ = reply
            raise RuntimeError(
                f"shard {self.shard_id} failed {op!r}: "
                f"{error_type}: {message}"
            )
        _, payload, delta = reply
        if delta is not None and self.on_delta is not None:
            self.on_delta(delta)
        return payload

    # Typed wrappers -- one per protocol op.

    def ingest(
        self, block_ids, times, values, seqs=None, trace_context=None
    ) -> dict:
        """Ship one observation batch; ``trace_context`` (a
        :meth:`TraceContext.to_dict` payload or None) parents the
        shard-side ``engine.ingest`` span under the caller's span.
        ``seqs`` (replicated routing) carries the runner-assigned
        destination-stream sequence numbers; the worker masks any at
        or below its journal high-water, making re-sends idempotent."""
        return self.request(
            "ingest",
            np.ascontiguousarray(block_ids, dtype=np.int64),
            np.ascontiguousarray(times, dtype=np.float64),
            np.ascontiguousarray(values, dtype=np.float64),
            None if seqs is None
            else np.ascontiguousarray(seqs, dtype=np.int64),
            trace_context,
        )

    def store_hints(self, target: int, block_ids, times, values, seqs) -> dict:
        """Park observation copies owed to dead shard ``target`` here."""
        return self.request(
            "store_hints", int(target),
            list(block_ids), list(times), list(values), list(seqs),
        )

    def peek_hints(self, target: int, max_n: int = 4096) -> dict:
        """Read (without removing) up to ``max_n`` hints for ``target``."""
        return self.request("peek_hints", int(target), int(max_n))

    def ack_hints(self, target: int, upto_seq: int) -> dict:
        """Drop hints for ``target`` up to ``upto_seq`` (forward done)."""
        return self.request("ack_hints", int(target), int(upto_seq))

    def query_block(self, block_id: int) -> dict | None:
        return self.request("query_block", int(block_id))

    def phase_map(self) -> dict:
        return self.request("phase_map")

    def stats(self) -> dict:
        return self.request("stats")

    def flush(self, close_partial: bool = False) -> dict:
        return self.request("flush", bool(close_partial))

    def drain(self) -> dict:
        return self.request("drain")

    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it won't."""
        with self._lock:
            try:
                self.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        self.process.join(timeout=join_timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=join_timeout_s)
        try:
            self.conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        """Hard-kill the worker (the chaos path: no drain, no flush)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid

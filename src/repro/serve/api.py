"""Stdlib-asyncio HTTP front-end for the sharded diurnal service.

No third-party web framework is available (or needed): the protocol
surface is a handful of small JSON/text endpoints, served by
:func:`asyncio.start_server` with a hand-rolled HTTP/1.1 request
parser.  Keep-alive is supported; bodies are bounded; every runner
call (a blocking pipe RPC to a shard process) is pushed onto the
default executor so the event loop never stalls behind a shard.

Endpoints:

* ``POST /observations`` — body ``{"observations": [[block_id,
  time_s, value], ...]}``.  200 with the admission report when every
  observation was accepted; **429 + Retry-After** when a shard's
  admission queue asserted backpressure (the report says which); 503 +
  Retry-After only when an observation's *entire* replica chain is out
  of the ring (with ``replication`` R, that takes R simultaneous
  deaths).  A 200 that landed on fewer than R replicas carries
  ``X-Write-Degraded: 1`` — accepted, durable on the live replicas,
  and owed to the dead one via hinted handoff.
* ``GET /blocks/{key}/state`` — the freshest live snapshot of one
  block across its replica chain (watermark, closed-window verdicts,
  provisional estimate).  404 for untracked blocks, 503 + Retry-After
  only when every replica is down.  Freshness headers on every
  answer: ``X-Replication`` (chain width R), ``X-Replicas-Answered``,
  ``X-Read-Partial`` (fewer than R answered) and ``X-Read-Stale``
  (every answering replica has known-dropped hints).
* ``GET /phase-map`` — merged diurnal phase map across shards, the
  freshest replica entry winning each block; ``partial`` flags only
  the case where a block may have lost its entire chain.
* ``GET /fleet`` — ring, per-shard health/stats, respawn counts.
* ``GET /metrics`` — fleet-aggregate metrics as Prometheus text
  (``?format=json`` for the JSON snapshot).
* ``GET /metrics/history?series=…&window=…&step=…`` — windowed
  points (``{t, min, max, mean, last, count}``) from the supervision
  loop's :class:`~repro.obs.history.MetricsHistory`; ``series`` may
  repeat, ``window`` is seconds (default 600), ``step`` optionally
  re-buckets.  Without ``series`` the catalog of tracked series is
  returned.  404 when history is disabled.
* ``GET /dashboard`` — the zero-dependency ops page: server-rendered
  HTML with inline-SVG sparklines over history (ingest rate, queue
  depth, shed ratio, p99, error burn rate, per-shard health and
  replication lag), refreshed by meta-refresh — no scripts, no
  frameworks, safe to leave open in a browser tab forever.
* ``GET /healthz`` — 200 when every shard is in the ring, else 503;
  both answers carry ``replication`` (configured R),
  ``replicas_syncing`` (shards mid hint-sync), and ``stale`` (sticky
  count of shards with known-dropped hints), so probes can tell
  healthy from degraded-but-serving.
* ``GET /debug/profile?seconds=N`` — opt-in (``enable_profiler``):
  sample this process for N seconds and return flamegraph-ready
  collapsed stacks as ``text/plain``.  404 when not enabled.

Every request — including errors, 404s, and malformed framing — is
observable end to end:

* **Tracing.** An incoming W3C ``traceparent`` header is honoured (a
  fresh trace is minted otherwise); the handler runs under an
  ``http.request`` span whose 16-hex span id doubles as the request
  id.  The span's context flows through
  :meth:`~repro.serve.runner.ServiceRunner.ingest` into the shard RPC,
  so one POST yields ``http.request → route → shard.rpc →
  engine.ingest`` as a single resolvable trace.  Every response echoes
  ``X-Request-Id`` and a ``traceparent`` naming the request span.
* **Metrics.** ``service_requests_total{route,method,status}``
  counters, a ``service_requests_in_flight`` gauge, and
  ``service_request_seconds{route}`` latency histograms land in the
  runner's registry (route labels are templates —
  ``/blocks/{key}/state`` — never raw paths, so cardinality stays
  bounded; unmatched paths share one ``unmatched`` label).  The
  supervision cycle folds these into the
  ``service_request_p99_seconds`` / ``service_error_ratio`` SLO
  instruments the alert rules watch.
* **Access log.** One ``http.access`` record per request in the
  structured event log, carrying method, route, status, duration, and
  the request/trace ids — greppable by the same id the client saw.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse

from repro.obs.profiler import profile_for
from repro.obs.tracing import (
    TraceContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.serve.runner import ServiceRunner, ShardDownError

__all__ = ["ServiceAPI"]

_MAX_BODY_BYTES = 32 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024
_MAX_PROFILE_SECONDS = 30.0

# Latency buckets tuned for a local-pipe service: sub-ms cache hits
# through multi-second profile grabs.
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _HTTPError(Exception):
    """Terminate request handling with a specific status."""

    def __init__(
        self, status: int, message: str, retry_after_s=None, headers=None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s
        self.headers = headers or {}


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _route_label(segments: list[str]) -> str:
    """The bounded-cardinality route template for a path."""
    if segments == ["observations"]:
        return "/observations"
    if len(segments) == 3 and segments[0] == "blocks" \
            and segments[2] == "state":
        return "/blocks/{key}/state"
    if segments == ["phase-map"]:
        return "/phase-map"
    if segments == ["fleet"]:
        return "/fleet"
    if segments == ["metrics"]:
        return "/metrics"
    if segments == ["metrics", "history"]:
        return "/metrics/history"
    if segments == ["dashboard"]:
        return "/dashboard"
    if segments == ["healthz"]:
        return "/healthz"
    if segments == ["debug", "profile"]:
        return "/debug/profile"
    return "unmatched"


class ServiceAPI:
    """Bind a :class:`~repro.serve.runner.ServiceRunner` to HTTP.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` (the test and smoke paths rely on this).
    ``enable_profiler`` arms ``GET /debug/profile`` — off by default
    because a sampler anyone can start from the network is an
    operator's decision, not a library's.
    """

    def __init__(
        self,
        runner: ServiceRunner,
        host: str = "127.0.0.1",
        port: int = 8000,
        enable_profiler: bool = False,
    ) -> None:
        self.runner = runner
        self.host = host
        self.port = port
        self.enable_profiler = enable_profiler
        self._server: asyncio.AbstractServer | None = None
        self._in_flight = runner.metrics.gauge("service_requests_in_flight")

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.runner.events.info(
            "service.api_listening", host=self.host, port=self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HTTPError as error:
                    # Malformed framing: answer once (with a request id,
                    # like every other response), then close — the byte
                    # stream cannot be trusted past this point.
                    response = self._framing_error_response(error)
                    self._write_response(writer, *response, keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload, content_type, extra = await self._process(
                    method, path, query, headers, body
                )
                self._write_response(
                    writer, status, payload, content_type, extra,
                    keep_alive=keep_alive,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _process(self, method, path, query, headers, body):
        """Handle one parsed request with full observability.

        Always returns a response tuple; every path through here — 200,
        typed ``_HTTPError``, or an unexpected exception — stamps the
        request id and traceparent headers, counts into the per-route
        metrics, and writes one access-log record.
        """
        runner = self.runner
        incoming = parse_traceparent(headers.get("traceparent"))
        trace_id = incoming.trace_id if incoming is not None else \
            new_trace_id()
        request_id = new_span_id()
        context = TraceContext(trace_id=trace_id, span_id=request_id)
        segments = [s for s in path.split("/") if s]
        route = _route_label(segments)
        span = runner.tracer.begin(
            "http.request",
            parent_context=incoming,
            trace_id=trace_id,
            span_id=request_id,
            method=method,
            route=route,
        )
        self._in_flight.inc()
        t0 = time.perf_counter()
        try:
            status, payload, content_type, extra = await self._dispatch(
                method, segments, query, body, context
            )
        except _HTTPError as error:
            status = error.status
            payload = _json_bytes(
                {"error": error.message, "request_id": request_id}
            )
            content_type = "application/json"
            extra = dict(error.headers)
            if error.retry_after_s is not None:
                extra["Retry-After"] = _retry_after(error.retry_after_s)
        except Exception as error:  # pragma: no cover - safety net
            status = 500
            payload = _json_bytes(
                {
                    "error": f"{type(error).__name__}: {error}",
                    "request_id": request_id,
                }
            )
            content_type = "application/json"
            extra = {}
        finally:
            self._in_flight.dec()
        duration_s = time.perf_counter() - t0
        if span is not None:
            span.attrs["status"] = status
            runner.tracer.end(span)
        self._observe(route, method, status, duration_s)
        runner.events.info(
            "http.access",
            method=method,
            path=path,
            route=route,
            status=status,
            duration_s=duration_s,
            n_bytes=len(payload),
            request_id=request_id,
            trace_id=trace_id,
            span_id=request_id,
        )
        extra.setdefault("X-Request-Id", request_id)
        extra.setdefault("traceparent", format_traceparent(context))
        return status, payload, content_type, extra

    def _framing_error_response(self, error: _HTTPError):
        """The 400/413 answer for requests that never parsed."""
        request_id = new_span_id()
        self._observe("unmatched", "?", error.status, 0.0)
        self.runner.events.info(
            "http.access",
            method="?",
            path="?",
            route="unmatched",
            status=error.status,
            duration_s=0.0,
            n_bytes=0,
            request_id=request_id,
            trace_id=new_trace_id(),
            span_id=request_id,
        )
        payload = _json_bytes(
            {"error": error.message, "request_id": request_id}
        )
        return (
            error.status,
            payload,
            "application/json",
            {"X-Request-Id": request_id},
        )

    def _observe(self, route, method, status, duration_s) -> None:
        metrics = self.runner.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "service_requests_total",
            route=route, method=method, status=str(status),
        ).inc()
        metrics.histogram(
            "service_request_seconds", buckets=_LATENCY_BUCKETS, route=route
        ).observe(duration_s)

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise _HTTPError(413, "header block too large")
        if len(head) > _MAX_HEADER_BYTES:
            raise _HTTPError(413, "header block too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HTTPError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        path, _, query = target.partition("?")
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HTTPError(413, f"body of {length} bytes exceeds limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, query, headers, body

    def _write_response(
        self, writer, status, payload, content_type, extra, keep_alive
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra.items())
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, method, segments, query, body, context):
        if segments == ["observations"]:
            if method != "POST":
                raise _HTTPError(405, "use POST /observations")
            return await self._post_observations(body, context)
        if len(segments) == 3 and segments[0] == "blocks" \
                and segments[2] == "state":
            if method != "GET":
                raise _HTTPError(405, "use GET /blocks/{key}/state")
            return await self._get_block_state(segments[1])
        path = "/" + "/".join(segments)
        if method != "GET":
            raise _HTTPError(405, f"no {method} routes at {path}")
        if segments == ["phase-map"]:
            return await self._get_json(self.runner.phase_map)
        if segments == ["fleet"]:
            return await self._get_json(self.runner.fleet_snapshot)
        if segments == ["metrics"]:
            return await self._get_metrics(query)
        if segments == ["metrics", "history"]:
            return await self._get_history(query)
        if segments == ["dashboard"]:
            return await self._get_dashboard()
        if segments == ["healthz"]:
            return self._get_healthz()
        if segments == ["debug", "profile"] and self.enable_profiler:
            return await self._get_profile(query)
        raise _HTTPError(404, f"no route for {path}")

    async def _offload(self, fn, *args):
        """Run a blocking runner call without stalling the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )

    async def _post_observations(self, body: bytes, context):
        try:
            parsed = json.loads(body or b"{}")
        except json.JSONDecodeError as error:
            raise _HTTPError(400, f"invalid JSON body: {error}")
        observations = parsed.get("observations")
        if not isinstance(observations, list):
            raise _HTTPError(
                400, 'body must be {"observations": [[block_id, t, v], ...]}'
            )
        for triple in observations:
            if not isinstance(triple, (list, tuple)) or len(triple) != 3:
                raise _HTTPError(
                    400, f"observation {triple!r} is not a [block, t, v] triple"
                )
        report = await self._offload(
            self.runner.ingest, observations, context
        )
        retry_after = self.runner.config.retry_after_s
        if report["rejected"] > 0 and report["backpressure"]:
            raise _HTTPError(
                429,
                f"admission queue full: {report['rejected']} of "
                f"{len(observations)} observations rejected",
                retry_after_s=retry_after,
            )
        if report["rejected"] > 0 and report["down"]:
            raise _HTTPError(
                503,
                f"every replica down: {report['rejected']} of "
                f"{len(observations)} observations rejected",
                retry_after_s=retry_after,
            )
        extra = {}
        if report.get("degraded"):
            # Accepted and durable, but on fewer than R replicas; the
            # missing copies ride hinted handoff.  Clients that care
            # about full redundancy can see it without parsing the body.
            extra["X-Write-Degraded"] = "1"
        return 200, _json_bytes(report), "application/json", extra

    async def _get_block_state(self, raw_key: str):
        try:
            block_id = int(raw_key)
        except ValueError:
            raise _HTTPError(400, f"block key {raw_key!r} is not an integer")
        try:
            result = await self._offload(self.runner.query_block_ex, block_id)
        except ShardDownError as error:
            raise _HTTPError(
                503, str(error),
                retry_after_s=self.runner.config.retry_after_s,
            )
        headers = {
            "X-Replication": str(result["replication"]),
            "X-Replicas-Answered": str(result["replicas_answered"]),
            "X-Read-Partial": "1" if result["partial"] else "0",
            "X-Read-Stale": "1" if result["stale"] else "0",
        }
        if result["snapshot"] is None:
            raise _HTTPError(
                404, f"block {block_id} is not tracked", headers=headers
            )
        return 200, _json_bytes(result["snapshot"]), "application/json", \
            headers

    async def _get_json(self, fn):
        payload = await self._offload(fn)
        return 200, _json_bytes(payload), "application/json", {}

    async def _get_metrics(self, query: str):
        if "format=json" in query:
            snap = await self._offload(self.runner.metrics_json)
            return 200, _json_bytes(snap), "application/json", {}
        text = await self._offload(self.runner.metrics_text)
        return (
            200,
            text.encode(),
            "text/plain; version=0.0.4; charset=utf-8",
            {},
        )

    async def _get_profile(self, query: str):
        params = urllib.parse.parse_qs(query)
        raw = params.get("seconds", ["1.0"])[-1]
        try:
            seconds = float(raw)
        except ValueError:
            raise _HTTPError(400, f"seconds={raw!r} is not a number")
        if not seconds > 0:
            raise _HTTPError(400, "seconds must be positive")
        seconds = min(seconds, _MAX_PROFILE_SECONDS)
        collapsed = await self._offload(profile_for, seconds)
        return (
            200,
            (collapsed + "\n").encode(),
            "text/plain; charset=utf-8",
            {},
        )

    async def _get_history(self, query: str):
        history = self.runner.history
        if history is None:
            raise _HTTPError(404, "history is disabled on this service")
        params = urllib.parse.parse_qs(query)
        window = _float_param(params, "window", 600.0)
        if window <= 0:
            raise _HTTPError(400, "window must be positive seconds")
        step = _float_param(params, "step", 0.0)
        if step < 0:
            raise _HTTPError(400, "step must be positive seconds")
        keys = params.get("series")
        if not keys:
            catalog = await self._offload(history.series)
            payload = {"window": window, "series": catalog}
            return 200, _json_bytes(payload), "application/json", {}
        results = []
        for key in keys:
            results.append(await self._offload(
                lambda k=key: history.range(
                    k, window, step_s=step or None
                )
            ))
        payload = {
            "window": window,
            "step": step or None,
            "series": results,
        }
        return 200, _json_bytes(payload), "application/json", {}

    async def _get_dashboard(self):
        if self.runner.history is None:
            raise _HTTPError(404, "history is disabled on this service")
        html = await self._offload(_render_dashboard, self.runner)
        return (
            200,
            html.encode(),
            "text/html; charset=utf-8",
            {},
        )

    def _get_healthz(self):
        runner = self.runner
        replication = {
            "replication": runner.config.replication,
            "replicas_syncing": int(runner._m.syncing.value),
            "stale": sum(1 for s in runner._slots if s.stale),
        }
        if runner.healthy:
            payload = {"status": "ok", **replication}
            return 200, _json_bytes(payload), "application/json", {}
        fleet = {
            str(s.shard_id): s.healthy for s in runner._slots
        }
        payload = _json_bytes(
            {"status": "degraded", "shards": fleet, **replication}
        )
        return 503, payload, "application/json", {}


def _float_param(params: dict, name: str, default: float) -> float:
    raw = params.get(name, [None])[-1]
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise _HTTPError(400, f"{name}={raw!r} is not a number")


def _json_bytes(payload) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode()


def _retry_after(seconds: float) -> str:
    return str(max(1, int(round(seconds))))


# -- dashboard rendering ---------------------------------------------------

_DASHBOARD_WINDOW_S = 600.0

_DASHBOARD_CSS = """\
:root { color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c; --status-critical: #d03b3b;
  --status-warning: #fab219;
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.grid { display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(264px, 1fr)); }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px 10px; }
.card h2 { font-size: 12px; font-weight: 500; margin: 0;
  color: var(--text-secondary); }
.value { font-size: 26px; font-weight: 600; margin: 2px 0 6px; }
.unit { font-size: 13px; font-weight: 400;
  color: var(--text-secondary); }
.spark { display: block; width: 100%; height: 48px; }
.shards { margin-top: 20px; }
.chip { display: inline-flex; align-items: center; gap: 6px;
  border: 1px solid var(--border); border-radius: 999px;
  padding: 2px 10px; margin-right: 8px; font-size: 13px; }
.chip .dot { font-size: 11px; }
.chip.good .dot { color: var(--status-good); }
.chip.bad .dot { color: var(--status-critical); }
.chip.warn .dot { color: var(--status-warning); }
.foot { color: var(--muted); font-size: 12px; margin-top: 20px; }
table.lag { border-collapse: collapse; width: 100%; margin-top: 8px; }
table.lag td { padding: 2px 8px 2px 0; font-size: 13px;
  color: var(--text-secondary);
  font-variant-numeric: tabular-nums; }
"""


def _fmt_number(value) -> str:
    """A dashboard-friendly number: short, no scientific noise."""
    if value is None or value != value:
        return "—"
    value = float(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return f"{value:.4f}".rstrip("0").rstrip(".")


def _rate_points(points: list[dict]) -> list[dict]:
    """Successive-delta rate series derived from counter points."""
    out = []
    for prev, cur in zip(points, points[1:]):
        dt = cur["t"] - prev["t"]
        if dt <= 0:
            continue
        rate = max(0.0, (cur["last"] - prev["last"]) / dt)
        out.append({
            "t": cur["t"], "min": rate, "max": rate,
            "mean": rate, "last": rate, "count": 1,
        })
    return out


def _render_dashboard(runner) -> str:
    """Server-side HTML for ``GET /dashboard`` — no scripts, no deps.

    Everything is computed from the runner's ``MetricsHistory`` at
    render time; the page re-renders itself via meta-refresh.  Colors
    live in CSS custom properties (light and dark from the same
    palette); status is never color alone — each shard chip pairs its
    dot with an explicit label.
    """
    from repro.obs.export import sparkline_svg

    history = runner.history
    window = _DASHBOARD_WINDOW_S

    def pts(series: str) -> list[dict]:
        return history.range(series, window)["points"]

    ingest = _rate_points(pts("service_ingest_observations_total"))
    panels = [
        ("Ingest rate", "obs/s",
         ingest[-1]["last"] if ingest else None, ingest),
    ]
    for title, unit, series in (
        ("Queue depth", "obs", "stream_ingest_queue_depth"),
        ("Shed ratio", "", "stream_shed_ratio"),
        ("Request p99", "s", "service_request_p99_seconds"),
        ("Error burn rate", "", "service_error_ratio"),
    ):
        points = pts(series)
        panels.append(
            (title, unit, points[-1]["last"] if points else None, points)
        )

    cards = []
    for title, unit, value, points in panels:
        unit_html = f' <span class="unit">{unit}</span>' if unit else ""
        cards.append(
            f'<div class="card"><h2>{title}</h2>'
            f'<div class="value">{_fmt_number(value)}{unit_html}</div>'
            f"{sparkline_svg(points)}</div>"
        )

    chips = []
    lag_rows = []
    for slot in runner._slots:
        shard = str(slot.shard_id)
        if slot.stale:
            cls, dot, label = "warn", "&#9650;", "stale"
        elif slot.healthy:
            cls, dot, label = "good", "&#9679;", "healthy"
        else:
            cls, dot, label = "bad", "&#10005;", "down"
        chips.append(
            f'<span class="chip {cls}"><span class="dot">{dot}</span>'
            f"shard {shard} · {label}</span>"
        )
        lag = pts(f'service_shard_hint_lag{{shard="{shard}"}}')
        lag_now = lag[-1]["last"] if lag else None
        lag_rows.append(
            f"<tr><td>shard {shard}</td>"
            f"<td>lag {_fmt_number(lag_now)} obs</td>"
            f"<td>{sparkline_svg(lag, width=160, height=24)}</td></tr>"
        )

    sub = (
        f"run {runner.run_id or '—'} · "
        f"{runner.config.n_shards} shards · "
        f"replication {runner.config.replication} · "
        f"window {window:g}s"
    )
    return (
        "<!doctype html><html><head>"
        '<meta charset="utf-8">'
        '<meta http-equiv="refresh" content="5">'
        "<title>diurnal service · ops</title>"
        f"<style>{_DASHBOARD_CSS}</style></head><body>"
        "<h1>diurnal service</h1>"
        f'<p class="sub">{sub}</p>'
        f'<div class="grid">{"".join(cards)}</div>'
        '<div class="shards"><h2 class="sub">shards</h2>'
        f'{"".join(chips)}'
        f'<table class="lag">{"".join(lag_rows)}</table></div>'
        '<p class="foot">server-rendered from the in-memory telemetry '
        "history; auto-refreshes every 5s · "
        '<a href="/metrics/history">/metrics/history</a> · '
        '<a href="/metrics">/metrics</a></p>'
        "</body></html>"
    )

"""/24 blocks and the probe-level view of them.

:class:`Block24` ties a block id to a behaviour model and optional outages.
Calling :meth:`Block24.realize` rolls the dice once for an observation
window, producing a :class:`ResponseOracle` — the *only* interface probers
may use.  The oracle also exposes the true availability series ``A`` (the
fraction of ever-active addresses answering in each round), which plays the
role of the paper's survey-derived ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.addrmodel import BlockBehavior
from repro.net.events import Outage, apply_outages
from repro.net.ipaddr import format_block

__all__ = ["Block24", "ResponseOracle"]


@dataclass
class ResponseOracle:
    """A realized observation window for one block.

    Attributes:
        block_id: the /24 prefix id.
        times: observation times in seconds, one per round.
        responses: (n_addresses, n_rounds) boolean probe outcomes.
        ever_active: host indices of E(b), the historically responsive set.
    """

    block_id: int
    times: np.ndarray
    responses: np.ndarray
    ever_active: np.ndarray

    def __post_init__(self) -> None:
        if self.responses.shape[1] != len(self.times):
            raise ValueError(
                f"responses has {self.responses.shape[1]} rounds, "
                f"times has {len(self.times)}"
            )

    @property
    def n_rounds(self) -> int:
        return len(self.times)

    @property
    def n_ever_active(self) -> int:
        """|E(b)|, the size of the ever-active set."""
        return len(self.ever_active)

    def probe(self, host: int, round_idx: int) -> bool:
        """Outcome of probing address ``host`` during round ``round_idx``."""
        return bool(self.responses[host, round_idx])

    def probe_many(self, hosts: np.ndarray, round_idx: int) -> np.ndarray:
        """Outcomes of probing several addresses in one round."""
        return self.responses[np.asarray(hosts, dtype=np.intp), round_idx]

    def true_availability(self) -> np.ndarray:
        """Ground-truth A per round: responsive fraction of E(b).

        This is what a full survey measures — the black line in the paper's
        Figures 1–3.  Blocks with an empty ever-active set report zeros.
        """
        if self.n_ever_active == 0:
            return np.zeros(self.n_rounds)
        return self.responses[self.ever_active, :].mean(axis=0)

    def mean_availability(self) -> float:
        """Window-average ground-truth availability (the paper's block A)."""
        series = self.true_availability()
        return float(series.mean()) if len(series) else 0.0


@dataclass
class Block24:
    """A simulated /24: identity, behaviour, and injected outages."""

    block_id: int
    behavior: BlockBehavior
    outages: list[Outage] = field(default_factory=list)

    def __str__(self) -> str:
        return format_block(self.block_id)

    def ever_active(self) -> np.ndarray:
        return self.behavior.ever_active()

    def realize(
        self, times: np.ndarray, rng: np.random.Generator
    ) -> ResponseOracle:
        """Draw one realization of the block over the given round times."""
        times = np.asarray(times, dtype=np.float64)
        responses = self.behavior.response_matrix(times, rng)
        responses = apply_outages(responses, times, self.outages)
        return ResponseOracle(
            block_id=self.block_id,
            times=times,
            responses=responses,
            ever_active=self.behavior.ever_active(),
        )

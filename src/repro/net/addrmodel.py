"""Per-address response models for simulated /24 blocks.

The paper's estimators only ever see probe outcomes, so the simulation's job
is to produce realistic *response processes* per address.  Four kinds cover
the behaviours the paper discusses:

``ALWAYS_ON``
    The address is up around the clock and answers each probe with a fixed
    response probability (losses, briefly sleeping hosts).
``DIURNAL``
    The address is up for a fixed window each day (phase = when the window
    starts, uptime = how long it lasts), optionally with per-day Gaussian
    noise on the window start (sigma_start) and duration (sigma_duration).
    This matches the controlled model of section 3.2.2 exactly.
``DYNAMIC``
    The address belongs to a dynamically assigned pool and alternates
    between assigned (responsive) and unassigned periods with exponential
    holding times — the churn of DHCP/PPP pools.
``DEAD``
    Never responds.  Dead addresses are outside the ever-active set E(b).

A :class:`BlockBehavior` stores the per-address parameters as flat numpy
arrays and can realize the whole block's response matrix for a span of
observation times in one vectorized pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = [
    "AddressKind",
    "BlockBehavior",
    "DAY_SECONDS",
    "make_always_on",
    "make_dead",
    "make_diurnal",
    "make_dynamic_pool",
    "make_trending",
    "merge_behaviors",
]

DAY_SECONDS = 86400.0

BLOCK_SIZE = 256


class AddressKind(IntEnum):
    """Response-process type of one simulated address."""

    DEAD = 0
    ALWAYS_ON = 1
    DIURNAL = 2
    DYNAMIC = 3
    ARRIVING = 4   # permanently up from phase_s onward (new host)
    DEPARTING = 5  # up until phase_s, then gone (decommissioned host)


@dataclass
class BlockBehavior:
    """Vectorized response model for up to 256 addresses of one /24.

    All arrays have one entry per address.  Parameters that do not apply to
    an address's kind are ignored for that address.
    """

    kinds: np.ndarray
    p_response: np.ndarray
    phase_s: np.ndarray
    uptime_s: np.ndarray
    sigma_start_s: np.ndarray
    sigma_duration_s: np.ndarray
    mean_up_s: np.ndarray
    mean_down_s: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.kinds)
        if n > BLOCK_SIZE:
            raise ValueError(f"a /24 holds at most {BLOCK_SIZE} addresses, got {n}")
        for name in (
            "p_response",
            "phase_s",
            "uptime_s",
            "sigma_start_s",
            "sigma_duration_s",
            "mean_up_s",
            "mean_down_s",
        ):
            arr = getattr(self, name)
            if len(arr) != n:
                raise ValueError(f"{name} has length {len(arr)}, expected {n}")
        self.kinds = np.asarray(self.kinds, dtype=np.uint8)

    @property
    def n_addresses(self) -> int:
        return len(self.kinds)

    def ever_active(self) -> np.ndarray:
        """Host indices of the ever-active set E(b): every non-dead address."""
        return np.flatnonzero(self.kinds != AddressKind.DEAD)

    def up_matrix(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Boolean (n_addresses, n_times) matrix: is each address *up*?

        "Up" means the host is powered/assigned; whether a probe is answered
        additionally depends on ``p_response`` (see :meth:`response_matrix`).
        """
        times = np.asarray(times, dtype=np.float64)
        n_addr = self.n_addresses
        up = np.zeros((n_addr, len(times)), dtype=bool)

        always = self.kinds == AddressKind.ALWAYS_ON
        up[always, :] = True

        diurnal = np.flatnonzero(self.kinds == AddressKind.DIURNAL)
        if diurnal.size:
            up[diurnal, :] = self._diurnal_up(diurnal, times, rng)

        dynamic = np.flatnonzero(self.kinds == AddressKind.DYNAMIC)
        for idx in dynamic:
            up[idx, :] = _renewal_up(
                times, self.mean_up_s[idx], self.mean_down_s[idx], rng
            )

        arriving = self.kinds == AddressKind.ARRIVING
        if arriving.any():
            up[arriving, :] = times[None, :] >= self.phase_s[arriving][:, None]
        departing = self.kinds == AddressKind.DEPARTING
        if departing.any():
            up[departing, :] = times[None, :] < self.phase_s[departing][:, None]
        return up

    def _diurnal_up(
        self, idx: np.ndarray, times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Up-matrix rows for the diurnal addresses listed in ``idx``.

        Each address is up when ``(time_of_day - start_d) mod DAY < dur_d``
        where ``start_d`` and ``dur_d`` carry fresh per-day noise, drawn each
        day for each address as in section 3.2.2 of the paper.
        """
        day = np.floor(times / DAY_SECONDS).astype(np.int64)
        tod = times - day * DAY_SECONDS
        day -= day.min()
        n_days = int(day.max()) + 1 if len(times) else 0
        n = idx.size

        start = self.phase_s[idx][:, None] + rng.normal(
            0.0, 1.0, size=(n, n_days)
        ) * self.sigma_start_s[idx][:, None]
        dur = self.uptime_s[idx][:, None] + rng.normal(
            0.0, 1.0, size=(n, n_days)
        ) * self.sigma_duration_s[idx][:, None]
        dur = np.clip(dur, 0.0, DAY_SECONDS)

        start_at = start[:, day]
        dur_at = dur[:, day]
        offset = np.mod(tod[None, :] - start_at, DAY_SECONDS)
        return offset < dur_at

    def response_matrix(
        self, times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean (n_addresses, n_times) matrix of probe outcomes.

        An address answers a probe iff it is up *and* an independent
        Bernoulli(``p_response``) draw succeeds.
        """
        up = self.up_matrix(times, rng)
        draws = rng.random(up.shape) < self.p_response[:, None]
        return up & draws


def _renewal_up(
    times: np.ndarray, mean_up: float, mean_down: float, rng: np.random.Generator
) -> np.ndarray:
    """Alternating exponential up/down renewal process evaluated at ``times``.

    The process starts in a random phase of its stationary cycle so that the
    beginning of the observation is not biased toward "up".
    """
    if len(times) == 0:
        return np.zeros(0, dtype=bool)
    if mean_up <= 0:
        return np.zeros(len(times), dtype=bool)
    if mean_down <= 0:
        return np.ones(len(times), dtype=bool)

    horizon = float(times.max() - times.min())
    cycle = mean_up + mean_down
    # Enough cycles to cover the horizon with generous slack.
    n_cycles = max(8, int(horizon / cycle * 3) + 8)
    ups = rng.exponential(mean_up, size=n_cycles)
    downs = rng.exponential(mean_down, size=n_cycles)
    # Start up with stationary probability, at a random point in the interval.
    start_up = rng.random() < mean_up / cycle
    first = ups[0] if start_up else downs[0]
    segments = np.empty(2 * n_cycles, dtype=np.float64)
    if start_up:
        segments[0::2] = ups
        segments[1::2] = downs
        up_parity = 0
    else:
        segments[0::2] = downs
        segments[1::2] = ups
        up_parity = 1
    segments[0] = first * rng.random()
    edges = np.cumsum(segments) + float(times.min())
    while edges[-1] < times.max():
        # Horizon slack was insufficient (rare heavy-tail draw): extend.
        extra_up = rng.exponential(mean_up, size=n_cycles)
        extra_down = rng.exponential(mean_down, size=n_cycles)
        extra = np.empty(2 * n_cycles, dtype=np.float64)
        if (len(segments) + up_parity) % 2 == 0:
            extra[0::2] = extra_up
            extra[1::2] = extra_down
        else:
            extra[0::2] = extra_down
            extra[1::2] = extra_up
        segments = np.concatenate([segments, extra])
        edges = np.cumsum(segments) + float(times.min())
    seg_idx = np.searchsorted(edges, times, side="right")
    return (seg_idx % 2) == up_parity


def _full(n: int, value: float) -> np.ndarray:
    return np.full(n, float(value))


def make_dead(n: int = BLOCK_SIZE) -> BlockBehavior:
    """A block (or partial block) of ``n`` never-responding addresses."""
    z = _full(n, 0.0)
    return BlockBehavior(
        kinds=np.full(n, AddressKind.DEAD, dtype=np.uint8),
        p_response=z.copy(),
        phase_s=z.copy(),
        uptime_s=z.copy(),
        sigma_start_s=z.copy(),
        sigma_duration_s=z.copy(),
        mean_up_s=z.copy(),
        mean_down_s=z.copy(),
    )


def make_always_on(n: int, p_response: float = 0.95) -> BlockBehavior:
    """``n`` always-on addresses answering probes with ``p_response``."""
    z = _full(n, 0.0)
    return BlockBehavior(
        kinds=np.full(n, AddressKind.ALWAYS_ON, dtype=np.uint8),
        p_response=_full(n, p_response),
        phase_s=z.copy(),
        uptime_s=z.copy(),
        sigma_start_s=z.copy(),
        sigma_duration_s=z.copy(),
        mean_up_s=z.copy(),
        mean_down_s=z.copy(),
    )


def make_diurnal(
    n: int,
    phase_s: float | np.ndarray,
    uptime_s: float | np.ndarray = 8 * 3600.0,
    p_response: float = 0.95,
    sigma_start_s: float = 0.0,
    sigma_duration_s: float = 0.0,
) -> BlockBehavior:
    """``n`` diurnal addresses, up ``uptime_s`` per day starting at ``phase_s``.

    ``phase_s`` may be a scalar (all addresses synchronized) or an array of
    per-address start times, as used when sweeping the phase spread Φ.
    """
    z = _full(n, 0.0)
    phase = np.broadcast_to(np.asarray(phase_s, dtype=np.float64), (n,)).copy()
    uptime = np.broadcast_to(np.asarray(uptime_s, dtype=np.float64), (n,)).copy()
    return BlockBehavior(
        kinds=np.full(n, AddressKind.DIURNAL, dtype=np.uint8),
        p_response=_full(n, p_response),
        phase_s=phase,
        uptime_s=uptime,
        sigma_start_s=_full(n, sigma_start_s),
        sigma_duration_s=_full(n, sigma_duration_s),
        mean_up_s=z.copy(),
        mean_down_s=z.copy(),
    )


def make_dynamic_pool(
    n: int,
    mean_up_s: float = 6 * 3600.0,
    mean_down_s: float = 18 * 3600.0,
    p_response: float = 0.95,
) -> BlockBehavior:
    """``n`` dynamically assigned addresses with exponential churn."""
    z = _full(n, 0.0)
    return BlockBehavior(
        kinds=np.full(n, AddressKind.DYNAMIC, dtype=np.uint8),
        p_response=_full(n, p_response),
        phase_s=z.copy(),
        uptime_s=z.copy(),
        sigma_start_s=z.copy(),
        sigma_duration_s=z.copy(),
        mean_up_s=_full(n, mean_up_s),
        mean_down_s=_full(n, mean_down_s),
    )


def make_trending(
    n: int,
    event_times_s: float | np.ndarray,
    departing: bool = False,
    p_response: float = 0.95,
) -> BlockBehavior:
    """``n`` addresses that permanently appear (or vanish) at given times.

    Models the non-stationary blocks of real surveys — hosts being
    deployed or decommissioned during the observation — which the paper's
    stationarity check (section 2.2) exists to flag.
    """
    z = _full(n, 0.0)
    kind = AddressKind.DEPARTING if departing else AddressKind.ARRIVING
    events = np.broadcast_to(
        np.asarray(event_times_s, dtype=np.float64), (n,)
    ).copy()
    return BlockBehavior(
        kinds=np.full(n, kind, dtype=np.uint8),
        p_response=_full(n, p_response),
        phase_s=events,
        uptime_s=z.copy(),
        sigma_start_s=z.copy(),
        sigma_duration_s=z.copy(),
        mean_up_s=z.copy(),
        mean_down_s=z.copy(),
    )


def merge_behaviors(*parts: BlockBehavior) -> BlockBehavior:
    """Concatenate partial behaviours into one block (at most 256 addresses).

    This is the idiom for composing the paper's controlled block of
    section 3.2.2: 50 always-on + 100 diurnal + 106 dead.
    """
    total = sum(p.n_addresses for p in parts)
    if total > BLOCK_SIZE:
        raise ValueError(f"merged block would hold {total} > {BLOCK_SIZE} addresses")

    def cat(name: str) -> np.ndarray:
        return np.concatenate([getattr(p, name) for p in parts])

    return BlockBehavior(
        kinds=cat("kinds"),
        p_response=cat("p_response"),
        phase_s=cat("phase_s"),
        uptime_s=cat("uptime_s"),
        sigma_start_s=cat("sigma_start_s"),
        sigma_duration_s=cat("sigma_duration_s"),
        mean_up_s=cat("mean_up_s"),
        mean_down_s=cat("mean_down_s"),
    )

"""Addressing substrate: IPv4 arithmetic, /24 blocks, and address behaviour models.

This package replaces the live Internet the paper probes.  A
:class:`~repro.net.blocks.Block24` owns 256 simulated addresses, each driven
by a response model from :mod:`repro.net.addrmodel` (always-on, diurnal,
dynamic pool, or dead).  Probers in :mod:`repro.probing` observe blocks only
through :class:`~repro.net.blocks.ResponseOracle`, mirroring the fact that
Trinocular sees nothing but ICMP responses.
"""

from repro.net.ipaddr import (
    format_block,
    format_ip,
    ip_to_int,
    block_of,
    parse_block,
)
from repro.net.blocks import Block24, ResponseOracle
from repro.net.addrmodel import (
    AddressKind,
    BlockBehavior,
    make_always_on,
    make_dead,
    make_diurnal,
    make_dynamic_pool,
    make_trending,
    merge_behaviors,
)
from repro.net.events import Outage, apply_outages

__all__ = [
    "AddressKind",
    "Block24",
    "BlockBehavior",
    "Outage",
    "ResponseOracle",
    "apply_outages",
    "block_of",
    "format_block",
    "format_ip",
    "ip_to_int",
    "make_always_on",
    "make_dead",
    "make_diurnal",
    "make_dynamic_pool",
    "make_trending",
    "merge_behaviors",
    "parse_block",
]

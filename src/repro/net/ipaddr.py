"""IPv4 address and /24-prefix arithmetic.

All hot paths in the library work on plain integers: a full address is a
32-bit int, and a /24 block is identified by its upper 24 bits
(``address >> 8``).  These helpers convert between integers and the dotted
forms used in logs, tables, and the paper's figures (e.g. ``"27.186.9/24"``).
"""

from __future__ import annotations

__all__ = [
    "block_of",
    "format_block",
    "format_ip",
    "host_of",
    "ip_in_block",
    "ip_to_int",
    "parse_block",
]

_MAX_IP = 0xFFFFFFFF
_MAX_BLOCK = 0xFFFFFF


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer.

    >>> ip_to_int("1.9.21.5")
    17700101
    """
    parts = dotted.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad address.

    >>> format_ip(17700101)
    '1.9.21.5'
    """
    if not 0 <= value <= _MAX_IP:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def block_of(ip: int) -> int:
    """Return the /24 block id (upper 24 bits) that contains ``ip``."""
    if not 0 <= ip <= _MAX_IP:
        raise ValueError(f"IPv4 address out of range: {ip}")
    return ip >> 8


def host_of(ip: int) -> int:
    """Return the host part (last octet) of ``ip`` within its /24."""
    if not 0 <= ip <= _MAX_IP:
        raise ValueError(f"IPv4 address out of range: {ip}")
    return ip & 0xFF


def ip_in_block(block_id: int, host: int) -> int:
    """Compose a full address from a /24 block id and a host octet."""
    if not 0 <= block_id <= _MAX_BLOCK:
        raise ValueError(f"/24 block id out of range: {block_id}")
    if not 0 <= host <= 255:
        raise ValueError(f"host octet out of range: {host}")
    return (block_id << 8) | host


def parse_block(text: str) -> int:
    """Parse the paper's block notation, e.g. ``"27.186.9/24"`` or ``"27.186.9"``.

    Full dotted-quads with a trailing ``/24`` (``"27.186.9.0/24"``) are also
    accepted.
    """
    body = text.strip()
    if body.endswith("/24"):
        body = body[: -len("/24")]
    parts = body.split(".")
    if len(parts) == 4:
        if parts[3] != "0":
            raise ValueError(f"/24 must end in .0, got {text!r}")
        parts = parts[:3]
    if len(parts) != 3:
        raise ValueError(f"not a /24 block: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_block(block_id: int) -> str:
    """Format a /24 block id in the paper's ``a.b.c/24`` notation.

    >>> format_block(parse_block("27.186.9/24"))
    '27.186.9/24'
    """
    if not 0 <= block_id <= _MAX_BLOCK:
        raise ValueError(f"/24 block id out of range: {block_id}")
    dotted = ".".join(str((block_id >> shift) & 0xFF) for shift in (16, 8, 0))
    return f"{dotted}/24"

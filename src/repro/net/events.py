"""Block-level events: outages and availability shifts.

Trinocular's purpose is outage detection; the availability estimator rides
along on its probes.  To exercise that path we inject outages — intervals
where the whole block stops responding (a routing failure or power event),
like the round-957 outage visible in the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Outage", "apply_outages", "outage_mask"]


@dataclass(frozen=True)
class Outage:
    """A whole-block outage over ``[start_s, end_s)`` in observation time."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(f"empty outage interval [{self.start_s}, {self.end_s})")

    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


def outage_mask(times: np.ndarray, outages: list[Outage]) -> np.ndarray:
    """Boolean mask, True where ``times`` falls inside any outage."""
    times = np.asarray(times, dtype=np.float64)
    mask = np.zeros(len(times), dtype=bool)
    for outage in outages:
        mask |= (times >= outage.start_s) & (times < outage.end_s)
    return mask


def apply_outages(
    responses: np.ndarray, times: np.ndarray, outages: list[Outage]
) -> np.ndarray:
    """Zero out response-matrix columns that fall inside an outage.

    ``responses`` is the (n_addresses, n_times) boolean matrix from
    :meth:`repro.net.addrmodel.BlockBehavior.response_matrix`.  Returns a new
    matrix; the input is not modified.
    """
    if not outages:
        return responses
    masked = responses.copy()
    masked[:, outage_mask(times, outages)] = False
    return masked

"""Sensitivity sweeps: the paper's Figures 7, 8 and 9.

Thin driver over :mod:`repro.simulation.blocksim` giving each figure its
sweep axis, with the paper's default values available but scaled-down
defaults for routine runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.blocksim import (
    ControlledBlockConfig,
    SweepPoint,
    accuracy_sweep,
)

__all__ = ["SensitivitySweep", "run_sensitivity_sweep", "SWEEPS"]

# Sweep axes per figure: parameter name and the paper's value grid.
SWEEPS = {
    "fig7_nd": ("n_diurnal", [1, 2, 5, 10, 20, 40, 60, 80, 100]),
    "fig8_phase": (
        "phi_max_s",
        [h * 3600.0 for h in (0, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24)],
    ),
    "fig9_duration": (
        "sigma_duration_s",
        [h * 3600.0 for h in (0, 2, 4, 6, 8, 10, 12, 16, 20, 24)],
    ),
}


@dataclass
class SensitivitySweep:
    """One figure's sweep: parameter values and batch accuracy stats."""

    name: str
    param: str
    points: list

    def medians(self) -> list:
        return [p.median for p in self.points]

    def format_series(self) -> str:
        unit = "addresses" if self.param == "n_diurnal" else "hours"
        lines = [f"{self.name}: accuracy vs {self.param}"]
        lines.append(f"{'value':>10} {'q1':>7}{'median':>8}{'q3':>7}")
        for point in self.points:
            value = point.value if self.param == "n_diurnal" else point.value / 3600
            lines.append(
                f"{value:>8.1f} {unit[:2]}{point.q1:>7.2f}{point.median:>8.2f}"
                f"{point.q3:>7.2f}"
            )
        return "\n".join(lines)


def run_sensitivity_sweep(
    name: str,
    n_batches: int = 3,
    experiments_per_batch: int = 12,
    days: float = 14.0,
    seed: int = 0,
    base: ControlledBlockConfig | None = None,
) -> SensitivitySweep:
    """Run one of the paper's three sweeps.

    The paper uses 10 batches x 100 experiments over 4 weeks; defaults
    here are scaled for minutes-not-hours runtimes and can be raised.
    """
    if name not in SWEEPS:
        raise KeyError(f"unknown sweep {name!r}; choose from {sorted(SWEEPS)}")
    param, values = SWEEPS[name]
    base = base or ControlledBlockConfig(days=days)
    points: list[SweepPoint] = accuracy_sweep(
        base,
        param,
        values,
        n_batches=n_batches,
        experiments_per_batch=experiments_per_batch,
        seed=seed,
    )
    return SensitivitySweep(name=name, param=param, points=points)

"""Access-link technology versus diurnalness: the paper's Figure 17.

For every measured block, reverse names are synthesized from the
operator's naming style and run through the *real* keyword classifier
(section 2.3.3); blocks are then grouped by surviving keyword and the
diurnal fraction per keyword reported.  The paper classifies 22.4% of
blocks into the nine analyzable keywords (46.3% show some feature before
the per-analysis cut), and finds dynamic ≈19%, dsl ≈11% and dialup <3%
diurnal — "measuring beats assuming".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.linktype.keywords import ACTIVE_KEYWORDS, classify_block_names
from repro.linktype.rdns import synthesize_block_names

__all__ = ["LinkTypeStudy", "run_linktype_study"]


@dataclass
class KeywordRow:
    keyword: str
    blocks: int
    fraction_diurnal: float


@dataclass
class LinkTypeStudy:
    """Per-keyword block counts and diurnal fractions."""

    rows: list
    n_blocks: int
    feature_fraction: float       # blocks with >= 1 surviving feature
    multi_feature_fraction: float

    def row_of(self, keyword: str) -> KeywordRow:
        for row in self.rows:
            if row.keyword == keyword:
                return row
        raise KeyError(f"keyword {keyword!r} not measured")

    def fraction_of(self, keyword: str) -> float:
        return self.row_of(keyword).fraction_diurnal

    def format_table(self) -> str:
        lines = [
            f"blocks: {self.n_blocks}; with feature: {self.feature_fraction:.1%}"
            f" (paper 46.3%); multi-feature: {self.multi_feature_fraction:.1%}"
            f" (paper 11.4%)",
            f"{'keyword':<10}{'blocks':>8}{'frac diurnal':>14}",
        ]
        for row in sorted(self.rows, key=lambda r: -r.fraction_diurnal):
            lines.append(
                f"{row.keyword:<10}{row.blocks:>8d}{row.fraction_diurnal:>14.3f}"
            )
        lines.append("(paper: dyn ~0.19, dsl ~0.11, dial < 0.03)")
        return "\n".join(lines)


def run_linktype_study(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    max_classified: int | None = None,
) -> LinkTypeStudy:
    """Synthesize rDNS for the study's blocks and classify link types.

    ``max_classified`` caps how many blocks get full 256-name synthesis
    (it is the slow step); None processes the whole world.
    """
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    world = study.world
    strict = study.measurement.strict_mask
    rng = np.random.default_rng(seed + 515)
    if max_classified is None or max_classified >= world.n_blocks:
        indices = np.arange(world.n_blocks)
    else:
        # Blocks are stored grouped by country, so a subsample must be
        # drawn randomly — a prefix would cover only the first countries.
        indices = rng.choice(world.n_blocks, size=max_classified, replace=False)
    n = len(indices)

    counts = {k: 0 for k in ACTIVE_KEYWORDS}
    diurnal = {k: 0 for k in ACTIVE_KEYWORDS}
    with_feature = 0
    multi_feature = 0
    for i in indices:
        names = synthesize_block_names(
            world.link_features(i), world.rdns_style[i], rng
        )
        result = classify_block_names(names)
        if result.has_feature:
            with_feature += 1
        if result.multi_feature:
            multi_feature += 1
        for keyword in result.labels:
            counts[keyword] += 1
            if strict[i]:
                diurnal[keyword] += 1

    rows = [
        KeywordRow(
            keyword=k,
            blocks=counts[k],
            fraction_diurnal=diurnal[k] / counts[k] if counts[k] else float("nan"),
        )
        for k in ACTIVE_KEYWORDS
        if counts[k] > 0
    ]
    return LinkTypeStudy(
        rows=rows,
        n_blocks=n,
        feature_fraction=with_feature / n if n else 0.0,
        multi_feature_fraction=multi_feature / n if n else 0.0,
    )

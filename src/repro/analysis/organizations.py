"""Organization-level diurnal behaviour (section 2.3.2's program).

The paper builds the AS→organization mapping so that "how the policies of
different organizations affect how they use IP addresses" can be studied,
and leaves comparing ASes within one organization as future work.  This
analysis does both over the measured world: per-organization diurnal
fractions (with the country baseline for contrast) and the within-org
spread across an organization's AS numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.asn.orgs import OrgMapper

__all__ = ["OrgRow", "OrgTable", "run_org_table"]


@dataclass
class OrgRow:
    """One organization's measured behaviour."""

    name: str
    country: str
    n_asns: int
    blocks: int
    fraction_diurnal: float
    country_fraction: float
    per_asn_fractions: list

    @property
    def within_org_spread(self) -> float:
        """Max - min diurnal fraction across the org's ASes."""
        if len(self.per_asn_fractions) < 2:
            return 0.0
        return max(self.per_asn_fractions) - min(self.per_asn_fractions)

    @property
    def deviates_from_country(self) -> float:
        return self.fraction_diurnal - self.country_fraction


@dataclass
class OrgTable:
    """Per-organization diurnal fractions over a measured world."""

    rows: list
    min_blocks: int

    def top(self, n: int = 10) -> list:
        return sorted(self.rows, key=lambda r: -r.fraction_diurnal)[:n]

    def row_of(self, keyword: str) -> OrgRow:
        needle = keyword.lower()
        for row in self.rows:
            if needle in row.name.lower():
                return row
        raise KeyError(f"no organization matching {keyword!r}")

    def format_table(self, n: int = 15) -> str:
        lines = [
            f"{'organization':<34}{'cc':>3}{'ASes':>5}{'blocks':>8}"
            f"{'frac':>7}{'country':>9}{'spread':>8}"
        ]
        for row in self.top(n):
            lines.append(
                f"{row.name[:33]:<34}{row.country:>3}{row.n_asns:>5}"
                f"{row.blocks:>8}{row.fraction_diurnal:>7.3f}"
                f"{row.country_fraction:>9.3f}{row.within_org_spread:>8.3f}"
            )
        return "\n".join(lines)


def run_org_table(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    min_blocks: int = 50,
) -> OrgTable:
    """Cluster the world's AS registry and measure each organization."""
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    world = study.world
    strict = study.measurement.strict_mask
    mapper = OrgMapper(world.as_records)
    ipasn = world.build_ipasn()

    # Country baselines from the same measurement.
    codes = world.country_codes()
    country_frac = {}
    for code in set(codes.tolist()):
        mask = codes == code
        country_frac[code] = float(strict[mask].mean())

    block_pos = {int(b): i for i, b in enumerate(world.block_id)}
    rows = []
    for cluster in mapper.clusters():
        org_blocks = []
        per_asn = []
        for asn in cluster.asns:
            asn_blocks = [
                block_pos[int(b)]
                for b in ipasn.blocks_of_asn(asn)
                if int(b) in block_pos
            ]
            org_blocks.extend(asn_blocks)
            if len(asn_blocks) >= 10:
                per_asn.append(float(strict[asn_blocks].mean()))
        if len(org_blocks) < min_blocks:
            continue
        idx = np.array(org_blocks, dtype=np.intp)
        country = world.as_records[0].country
        record = next(
            r for r in world.as_records if r.asn == cluster.asns[0]
        )
        rows.append(
            OrgRow(
                name=cluster.display_name,
                country=record.country,
                n_asns=len(cluster.asns),
                blocks=len(org_blocks),
                fraction_diurnal=float(strict[idx].mean()),
                country_fraction=country_frac.get(record.country, float("nan")),
                per_asn_fractions=per_asn,
            )
        )
    return OrgTable(rows=rows, min_blocks=min_blocks)

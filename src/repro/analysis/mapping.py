"""Geographic views: Figures 12/13 and Tables 3/4.

Figure 12 counts observable (geolocatable) blocks per 2°x2° cell; Figure
13 shows the per-cell fraction of strictly diurnal blocks.  Table 3 ranks
countries by diurnal fraction (with GDP); Table 4 aggregates by region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.geo.grid import WorldGrid, grid_counts, grid_fraction
from repro.geo.regions import REGIONS, region_of
from repro.simulation.countries import country_by_code

__all__ = [
    "CountryTable",
    "RegionTable",
    "WorldMaps",
    "run_country_table",
    "run_region_table",
    "run_world_maps",
]


@dataclass
class WorldMaps:
    """The two world grids of Figures 12 and 13."""

    counts: WorldGrid
    diurnal_fraction: WorldGrid
    geolocated_fraction: float

    def format_series(self) -> str:
        dense = int((self.counts.values > 0).sum())
        valid = ~np.isnan(self.diurnal_fraction.values)
        lines = [
            f"geolocated: {self.geolocated_fraction:.1%} of blocks (paper 93%)",
            f"occupied {self.counts.cell_deg:.0f}-degree cells: {dense}",
            f"cells with diurnal fraction: {int(valid.sum())}",
        ]
        for name, lat, lon in (
            ("US east", 40.0, -75.0),
            ("W Europe", 50.0, 8.0),
            ("E China", 31.0, 117.0),
            ("Brazil", -23.0, -47.0),
        ):
            lines.append(
                f"{name:>9}: blocks={self.counts.value_at(lat, lon):>7.0f} "
                f"diurnal={self.diurnal_fraction.value_at(lat, lon):.2f}"
            )
        return "\n".join(lines)


def run_world_maps(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    cell_deg: float = 2.0,
) -> WorldMaps:
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    lats, lons, located = study.located()
    strict = study.measurement.strict_mask
    return WorldMaps(
        counts=grid_counts(lats, lons, cell_deg),
        diurnal_fraction=grid_fraction(lats, lons, strict, cell_deg, min_count=3),
        geolocated_fraction=float(located.mean()),
    )


@dataclass
class CountryRow:
    code: str
    region: str
    blocks: int
    fraction_diurnal: float
    gdp_pc: float
    paper_fraction: float


@dataclass
class CountryTable:
    """Measured per-country diurnal fractions (Table 3)."""

    rows: list
    min_blocks: int

    def top(self, n: int = 20) -> list:
        return sorted(
            self.rows, key=lambda r: r.fraction_diurnal, reverse=True
        )[:n]

    def row_of(self, code: str) -> CountryRow:
        for row in self.rows:
            if row.code == code:
                return row
        raise KeyError(f"country {code!r} below threshold or unmeasured")

    def format_table(self, n: int = 20) -> str:
        lines = [
            f"{'code':<6}{'region':<20}{'blocks':>8}{'frac':>8}"
            f"{'paper':>8}{'GDP':>8}"
        ]
        shown = self.top(n)
        us = next((r for r in self.rows if r.code == "US"), None)
        if us is not None and us not in shown:
            shown = shown + [us]
        for row in shown:
            lines.append(
                f"{row.code:<6}{row.region:<20}{row.blocks:>8d}"
                f"{row.fraction_diurnal:>8.3f}{row.paper_fraction:>8.3f}"
                f"{row.gdp_pc:>8.0f}"
            )
        return "\n".join(lines)


def run_country_table(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    min_blocks: int = 20,
) -> CountryTable:
    """Per-country measured diurnal fraction, MaxMind-located blocks only.

    ``min_blocks`` mirrors the paper's ≥1000-block cutoff, scaled to the
    world size.
    """
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    codes = study.geodb.countries(study.world.block_id)
    strict = study.measurement.strict_mask
    rows = []
    for code in sorted(set(codes.tolist()) - {""}):
        mask = codes == code
        if mask.sum() < min_blocks:
            continue
        country = country_by_code(code)
        rows.append(
            CountryRow(
                code=code,
                region=region_of(code),
                blocks=int(mask.sum()),
                fraction_diurnal=float(strict[mask].mean()),
                gdp_pc=country.gdp_pc,
                paper_fraction=country.diurnal_frac,
            )
        )
    return CountryTable(rows=rows, min_blocks=min_blocks)


@dataclass
class RegionRow:
    region: str
    blocks: int
    fraction_diurnal: float


@dataclass
class RegionTable:
    """Measured per-region diurnal fractions (Table 4)."""

    rows: list

    def row_of(self, region: str) -> RegionRow:
        for row in self.rows:
            if row.region == region:
                return row
        raise KeyError(f"region {region!r} unmeasured")

    def sorted_rows(self) -> list:
        return sorted(self.rows, key=lambda r: r.fraction_diurnal)

    def format_table(self) -> str:
        lines = [f"{'region':<22}{'blocks':>9}{'frac diurnal':>14}"]
        for row in self.sorted_rows():
            lines.append(
                f"{row.region:<22}{row.blocks:>9d}{row.fraction_diurnal:>14.4f}"
            )
        return "\n".join(lines)


def run_region_table(
    study: GlobalStudy | None = None, n_blocks: int = 8000, seed: int = 0
) -> RegionTable:
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    codes = study.geodb.countries(study.world.block_id)
    strict = study.measurement.strict_mask
    regions = np.array(
        [region_of(c) if c else "" for c in codes.tolist()], dtype=object
    )
    rows = []
    for region in REGIONS:
        mask = regions == region
        if not mask.any():
            continue
        rows.append(
            RegionRow(
                region=region,
                blocks=int(mask.sum()),
                fraction_diurnal=float(strict[mask].mean()),
            )
        )
    return RegionTable(rows=rows)

"""Shared substrate for the global (section 4/5) analyses.

Generating a world and measuring it is the expensive step every global
figure shares; :class:`GlobalStudy` does it once and hands out views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geodb import GeoDatabase
from repro.probing.rounds import RoundSchedule
from repro.simulation.fastsim import FastMeasurement, measure_world
from repro.simulation.internet import InternetWorld, WorldConfig, generate_world
from repro.simulation.scenarios import SCENARIO_SCHEDULES

__all__ = ["GlobalStudy"]


@dataclass
class GlobalStudy:
    """One generated world, measured, with its registry views."""

    world: InternetWorld
    schedule: RoundSchedule
    measurement: FastMeasurement
    geodb: GeoDatabase

    @classmethod
    def run(
        cls,
        n_blocks: int = 20000,
        seed: int = 0,
        days: float | None = None,
        restart_interval_s: float | None = None,
    ) -> "GlobalStudy":
        """Generate and measure an A12W-style study.

        Defaults follow the A_12w dataset: 35 days with 5.5-hour prober
        restarts and a 17:18 UTC start; pass ``days`` to shorten runs.
        """
        params = SCENARIO_SCHEDULES["A12W"]
        schedule = RoundSchedule.for_days(
            params["days"] if days is None else days,
            start_s=params["start_s"],
            restart_interval_s=(
                params["restart_interval_s"]
                if restart_interval_s is None
                else restart_interval_s
            ),
        )
        world = generate_world(WorldConfig(n_blocks=n_blocks, seed=seed))
        measurement = measure_world(world, schedule)
        geodb = world.build_geodb()
        return cls(
            world=world, schedule=schedule, measurement=measurement, geodb=geodb
        )

    def located(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(lats, lons, located-mask) from the MaxMind-like view."""
        return self.geodb.locate_many(self.world.block_id)

    def geolocation_coverage(self) -> float:
        return self.geodb.coverage(self.world.block_id)

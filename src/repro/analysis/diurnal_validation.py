"""Diurnal-detection validation: the paper's Table 1 and stationarity check.

Ground truth is the classification computed from *true* per-round
availability (full survey data); the prediction is the classification from
the lightweight estimate Â_s.  The paper reports the confusion matrix over
29k survey blocks: precision 82.48%, accuracy 90.99%, with a deliberate
bias toward false negatives.  It also verifies ~80.3% of survey blocks are
stationary (linear trend under one address/day).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import BatchConfig, BatchRunner, MeasurementConfig
from repro.probing.rounds import RoundSchedule
from repro.simulation.scenarios import schedule_for, survey_population

__all__ = ["DiurnalValidation", "run_diurnal_validation"]


@dataclass
class DiurnalValidation:
    """Confusion matrix of estimate-driven vs truth-driven diurnal labels.

    Following Table 1's notation: ``d`` means diurnal under true A,
    ``d_hat`` diurnal under Â_s (both use the strict test).
    """

    d_dhat: int      # correct: diurnal, predicted diurnal
    n_nhat: int      # correct: non-diurnal, predicted non-diurnal
    d_nhat: int      # error: diurnal missed (false negative)
    n_dhat: int      # error: non-diurnal flagged (false positive)
    stationary_fraction: float

    @property
    def total(self) -> int:
        return self.d_dhat + self.n_nhat + self.d_nhat + self.n_dhat

    @property
    def precision(self) -> float:
        """P(truly diurnal | predicted diurnal); paper: 82.48%."""
        predicted = self.d_dhat + self.n_dhat
        return self.d_dhat / predicted if predicted else 1.0

    @property
    def accuracy(self) -> float:
        """Correct fraction overall; paper: 90.99%."""
        return (self.d_dhat + self.n_nhat) / self.total if self.total else 1.0

    @property
    def recall(self) -> float:
        """P(predicted diurnal | truly diurnal) — deliberately modest."""
        actual = self.d_dhat + self.d_nhat
        return self.d_dhat / actual if actual else 1.0

    @property
    def false_negative_biased(self) -> bool:
        """The paper prefers misses over false alarms for section 5."""
        return self.d_nhat >= self.n_dhat

    def format_table(self) -> str:
        total = self.total
        rows = [
            ("(correct) d", "d_hat", self.d_dhat),
            ("          n", "n_hat", self.n_nhat),
            ("(error)   d", "n_hat", self.d_nhat),
            ("          n", "d_hat", self.n_dhat),
        ]
        lines = [f"{'with A':<14}{'with A_s':<10}{'blocks':>8}{'share':>9}"]
        for truth, pred, count in rows:
            lines.append(
                f"{truth:<14}{pred:<10}{count:>8d}{count / total:>8.2%}"
            )
        lines.append(
            f"precision: {self.precision:.2%}; accuracy: {self.accuracy:.2%}"
            f" (paper: 82.48% / 90.99%)"
        )
        lines.append(
            f"stationary blocks: {self.stationary_fraction:.1%} (paper: 80.3%)"
        )
        return "\n".join(lines)


def run_diurnal_validation(
    n_blocks: int = 150,
    seed: int = 0,
    schedule: RoundSchedule | None = None,
    config: MeasurementConfig | None = None,
) -> DiurnalValidation:
    """Classify a survey population from truth and from estimates."""
    schedule = schedule or schedule_for("S51W")
    config = config or MeasurementConfig()
    blocks = survey_population(n_blocks, seed=seed)
    # Same per-block seeding as the legacy loop (bit-identical results),
    # with per-block failure isolation from the resilient runner.
    runner = BatchRunner(BatchConfig(measurement=config))
    batch = runner.run(blocks, schedule, seed=seed + 31)

    d_dhat = n_nhat = d_nhat = n_dhat = 0
    stationary = 0
    measured = 0
    for result in batch.measurements:
        if result.skipped:
            continue
        measured += 1
        truth = result.true_report.is_strict
        pred = result.report.is_strict
        if truth and pred:
            d_dhat += 1
        elif truth:
            d_nhat += 1
        elif pred:
            n_dhat += 1
        else:
            n_nhat += 1
        if result.stationary:
            stationary += 1

    return DiurnalValidation(
        d_dhat=d_dhat,
        n_nhat=n_nhat,
        d_nhat=d_nhat,
        n_dhat=n_dhat,
        stationary_fraction=stationary / measured if measured else 1.0,
    )

"""Long-term diurnal trend: the paper's Figure 11.

The paper applies its detector to 63 Internet surveys spanning 2009-12 to
2013, finding the diurnal fraction relatively stable (~12-14%) with a
marked decline after 2012 as dynamically addressed hosts shift toward
always-on behaviour.  We model that drift: each quarterly snapshot scales
the world's country diurnal propensities by a trend factor that is flat
before 2012 and declines afterwards, then measures a survey-sized sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.probing.rounds import RoundSchedule
from repro.simulation.fastsim import measure_world
from repro.simulation.internet import WorldConfig, generate_world
from repro.stats.regression import LinearFit, fit_line

__all__ = ["LongTermTrend", "run_longterm_trend", "trend_factor"]

# The paper's long-term observation window.
START_YEAR = 2009.92  # Survey S30w, December 2009
END_YEAR = 2013.25
DECLINE_START = 2012.0
# Post-2012 relative decline per year (fraction drops ~12% -> ~10% by 2013).
DECLINE_RATE = 0.13


def trend_factor(year: float) -> float:
    """Scaling applied to country diurnal fractions at a given time."""
    if year <= DECLINE_START:
        return 1.0
    return max(0.5, 1.0 - DECLINE_RATE * (year - DECLINE_START))


@dataclass
class LongTermTrend:
    """Diurnal fraction per dated snapshot."""

    years: np.ndarray
    fractions: np.ndarray
    sites: list

    def pre_2012_mean(self) -> float:
        mask = self.years <= DECLINE_START
        return float(self.fractions[mask].mean())

    def post_2012_slope(self) -> LinearFit:
        mask = self.years >= DECLINE_START
        return fit_line(self.years[mask], self.fractions[mask])

    def declines_after_2012(self) -> bool:
        return self.post_2012_slope().slope < 0

    def format_series(self) -> str:
        lines = [f"{'date':>9}{'site':>6}{'diurnal frac':>14}"]
        for year, frac, site in zip(self.years, self.fractions, self.sites):
            lines.append(f"{year:>9.2f}{site:>6}{frac:>13.1%}")
        slope = self.post_2012_slope()
        lines.append(
            f"pre-2012 mean: {self.pre_2012_mean():.1%}; post-2012 slope: "
            f"{slope.slope:+.3%}/yr (declining: {self.declines_after_2012()})"
        )
        return "\n".join(lines)


def run_longterm_trend(
    n_snapshots: int = 14,
    blocks_per_snapshot: int = 1200,
    seed: int = 0,
    days: float = 14.0,
) -> LongTermTrend:
    """Measure quarterly survey-style snapshots from late 2009 to 2013.

    Snapshots alternate vantage sites (w / c / j) like the paper's
    63-dataset series.
    """
    years = np.linspace(START_YEAR, END_YEAR, n_snapshots)
    schedule = RoundSchedule.for_days(days)
    fractions = []
    sites = []
    site_cycle = ("w", "c", "j")
    for i, year in enumerate(years):
        factor = trend_factor(float(year))
        world = generate_world(
            WorldConfig(n_blocks=blocks_per_snapshot, seed=seed + i)
        )
        # Apply the temporal drift: rescale the designed diurnal population
        # by deactivating a share of diurnal blocks' daily swing.
        rng = np.random.default_rng(seed + 10_000 + i)
        diurnal_idx = np.flatnonzero(world.is_diurnal)
        keep = rng.random(len(diurnal_idx)) < factor
        demote = diurnal_idx[~keep]
        world.is_diurnal[demote] = False
        world.a_low[demote] = world.a_high[demote] * (
            1 - rng.uniform(0.0, 0.04, len(demote))
        )
        measurement = measure_world(world, schedule, seed=seed + 20_000 + i)
        fractions.append(measurement.fraction_strict())
        sites.append(site_cycle[i % 3])
    return LongTermTrend(
        years=years, fractions=np.array(fractions), sites=sites
    )

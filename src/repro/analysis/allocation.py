"""Diurnalness versus address-allocation date: the paper's Figure 15.

Blocks are grouped by the month their address space was allocated; the
fraction used diurnally rises with allocation date (linear slope ≈
+0.08%/month, correlation ≈ 0.609), reflecting stricter address-use
policies over time.  The paper also checks the effect is not a GDP proxy:
country allocation ages correlate poorly with GDP (|ρ| < 0.27).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.simulation.countries import COUNTRIES
from repro.stats.descriptive import pearson
from repro.stats.regression import LinearFit, fit_line

__all__ = ["AllocationTrend", "run_allocation_trend"]


@dataclass
class AllocationTrend:
    """Diurnal fraction per allocation month."""

    months: np.ndarray          # months since 1983-01, bin centres
    fractions: np.ndarray       # measured diurnal fraction per bin
    counts: np.ndarray
    gdp_vs_first_alloc: float   # country-level correlations (|rho| < 0.27)
    gdp_vs_mean_alloc: float

    def fit(self) -> LinearFit:
        """Linear fit of fraction against month (paper: +0.08%/mo, r 0.609)."""
        valid = self.counts >= 10
        return fit_line(self.months[valid], self.fractions[valid])

    def slope_percent_per_month(self) -> float:
        return self.fit().slope * 100.0

    def allocation_independent_of_gdp(self, threshold: float = 0.35) -> bool:
        return (
            abs(self.gdp_vs_first_alloc) < threshold
            and abs(self.gdp_vs_mean_alloc) < threshold
        )

    def format_series(self) -> str:
        fit = self.fit()
        lines = [
            f"slope: {self.slope_percent_per_month():+.3f}%/month "
            f"(paper: +0.08%/month), r = {fit.r:.3f} (paper: 0.609)",
            f"corr(GDP, first alloc) = {self.gdp_vs_first_alloc:+.2f}, "
            f"corr(GDP, mean alloc) = {self.gdp_vs_mean_alloc:+.2f} "
            f"(paper: |rho| < 0.27)",
            "",
            f"{'alloc year':>11}{'blocks':>8}{'frac diurnal':>14}",
        ]
        for month, frac, count in zip(self.months, self.fractions, self.counts):
            if count < 10:
                continue
            lines.append(
                f"{1983 + month / 12:>11.1f}{int(count):>8d}{frac:>14.3f}"
            )
        return "\n".join(lines)


def run_allocation_trend(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    bin_months: int = 12,
) -> AllocationTrend:
    """Bin measured blocks by allocation month (yearly bins by default;
    the paper plots monthly over a 3.7M-block population)."""
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    months = study.world.alloc_month()
    strict = study.measurement.strict_mask

    lo, hi = months.min(), months.max() + 1
    edges = np.arange(lo, hi + bin_months, bin_months)
    centers = (edges[:-1] + edges[1:]) / 2.0
    idx = np.clip(np.digitize(months, edges) - 1, 0, len(centers) - 1)
    counts = np.zeros(len(centers))
    hits = np.zeros(len(centers))
    np.add.at(counts, idx, 1.0)
    np.add.at(hits, idx, strict.astype(np.float64))
    with np.errstate(invalid="ignore"):
        fractions = hits / counts
    fractions[counts == 0] = np.nan

    age = 2013.0
    gdp = np.array([c.gdp_pc for c in COUNTRIES])
    first = age - np.array([c.first_alloc_year for c in COUNTRIES])
    mean = age - np.array([c.mean_alloc_year for c in COUNTRIES])
    return AllocationTrend(
        months=centers,
        fractions=fractions,
        counts=counts,
        gdp_vs_first_alloc=pearson(gdp, first),
        gdp_vs_mean_alloc=pearson(gdp, mean),
    )

"""Outage-detection validation: why the operational estimate must be low.

Section 2.1.1's core argument: Trinocular turns negative probes into
"down" evidence with strength set by the assumed availability, so feeding
it an estimate that *over*-states A manufactures false outages.  This
analysis injects real outages into simulated blocks, runs the full
prober, and measures detection rate, detection latency, and false-outage
rate — once with the conservative Â_o driving the belief (the paper's
design) and once with the unbiased short-term Â_s (the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import AvailabilityEstimator, EstimatorConfig
from repro.net.addrmodel import make_always_on, make_dead, merge_behaviors
from repro.net.blocks import Block24
from repro.net.events import Outage
from repro.probing.prober import AdaptiveProber, ProberConfig
from repro.probing.rounds import RoundSchedule

__all__ = ["OutageValidation", "run_outage_validation"]


class _FeedSelector:
    """Feedback adapter choosing which estimate drives belief updates."""

    def __init__(self, estimator: AvailabilityEstimator, feed: str) -> None:
        if feed not in ("operational", "short", "long"):
            raise ValueError(f"unknown feed {feed!r}")
        self.estimator = estimator
        self.feed = feed

    def current(self) -> float:
        if self.feed == "operational":
            return self.estimator.a_operational
        if self.feed == "short":
            return self.estimator.a_short
        return self.estimator.a_long

    def observe(self, positives: int, total: int) -> None:
        self.estimator.observe(positives, total)

    def restart(self) -> None:
        self.estimator.restart()


@dataclass
class OutageValidation:
    """Aggregate outage-detection quality for one feed choice."""

    feed: str
    n_blocks: int
    n_injected: int
    n_detected: int
    false_outage_rounds: int
    clean_rounds: int
    latencies: np.ndarray

    @property
    def detection_rate(self) -> float:
        return self.n_detected / self.n_injected if self.n_injected else 1.0

    @property
    def median_latency_rounds(self) -> float:
        return float(np.median(self.latencies)) if len(self.latencies) else float("nan")

    @property
    def false_outage_rate(self) -> float:
        """Fraction of healthy rounds wrongly concluded down."""
        return (
            self.false_outage_rounds / self.clean_rounds if self.clean_rounds else 0.0
        )

    def format_table(self) -> str:
        return (
            f"feed={self.feed:<12} blocks={self.n_blocks} "
            f"detected {self.n_detected}/{self.n_injected} "
            f"({self.detection_rate:.0%}), median latency "
            f"{self.median_latency_rounds:.0f} rounds, false-outage rate "
            f"{self.false_outage_rate:.4%} of healthy rounds"
        )


def run_outage_validation(
    feed: str = "operational",
    n_blocks: int = 40,
    availability: float = 0.35,
    outage_rounds: tuple = (400, 460),
    days: float = 7.0,
    seed: int = 0,
    estimator_config: EstimatorConfig | None = None,
) -> OutageValidation:
    """Inject one outage per block and score detection under a feed choice.

    Blocks are moderately low-availability (default per-address 0.35) —
    the regime where the gap between Â_o and Â_s matters most, because an
    up block frequently answers a single probe negatively.
    """
    estimator_config = estimator_config or EstimatorConfig()
    schedule = RoundSchedule.for_days(days)
    start, end = outage_rounds
    outage = Outage(start * schedule.round_s, end * schedule.round_s)
    children = np.random.SeedSequence(seed).spawn(n_blocks)

    n_detected = 0
    false_rounds = 0
    clean_rounds = 0
    latencies = []
    for i, child in enumerate(children):
        rng = np.random.default_rng(child)
        n_active = int(rng.integers(60, 200))
        block = Block24(
            i,
            merge_behaviors(
                make_always_on(n_active, p_response=availability),
                make_dead(256 - n_active),
            ),
            [outage],
        )
        oracle = block.realize(schedule.times(), rng)
        prober = AdaptiveProber(
            oracle.ever_active, ProberConfig(walk_seed=int(rng.integers(2**31)))
        )
        feedback = _FeedSelector(AvailabilityEstimator(estimator_config), feed)
        log = prober.run(oracle, schedule, feedback)

        down = log.states == -1
        # Detection: any down conclusion inside the injected window.
        inside = down[start:end]
        if inside.any():
            n_detected += 1
            latencies.append(int(np.argmax(inside)))
        # False outages: down conclusions while the block was healthy
        # (excluding a short post-outage recovery margin and warm-up).
        warmup = 100
        healthy = np.ones(schedule.n_rounds, dtype=bool)
        healthy[:warmup] = False
        healthy[start : end + 10] = False
        false_rounds += int(down[healthy].sum())
        clean_rounds += int(healthy.sum())

    return OutageValidation(
        feed=feed,
        n_blocks=n_blocks,
        n_injected=n_blocks,
        n_detected=n_detected,
        false_outage_rounds=false_rounds,
        clean_rounds=clean_rounds,
        latencies=np.array(latencies),
    )

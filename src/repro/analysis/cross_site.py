"""Cross-vantage stability: the paper's Table 2.

The same world is measured twice with independent probing randomness —
the A_12w (Los Angeles) and A_12j (Keio) vantage points observing the same
Internet.  The paper finds strong disagreement (one site strict, the other
neither) in only ~1.2% of A_12w's diurnal blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.simulation.fastsim import measure_world

__all__ = ["CrossSiteComparison", "run_cross_site"]

_CLASSES = ("d", "e", "N")  # strict / either-only counted as e / neither


def _to_class(labels: np.ndarray) -> np.ndarray:
    """Map classifier codes to the paper's d / e / N partition.

    The paper's ``e`` is d ∪ r; its Table 2 rows overlap (d ⊂ e).  For a
    3x3 contingency matrix we use the disjoint partition d / relaxed-only /
    neither and report the paper's overlapping counts separately.
    """
    out = np.full(len(labels), "N", dtype=object)
    out[labels == 1] = "e"
    out[labels == 2] = "d"
    return out


@dataclass
class CrossSiteComparison:
    """Contingency counts between two vantage points."""

    matrix: dict
    n_blocks: int

    def count(self, first: str, second: str) -> int:
        return self.matrix[(first, second)]

    def strong_disagreement_fraction(self) -> float:
        """Paper's headline: blocks strict at one site, neither at the other,
        as a fraction of the first site's strict blocks (~1.2%)."""
        strict_first = sum(self.matrix[("d", c)] for c in _CLASSES)
        if strict_first == 0:
            return 0.0
        return self.matrix[("d", "N")] / strict_first

    def agreement_fraction(self) -> float:
        agree = sum(self.matrix[(c, c)] for c in _CLASSES)
        return agree / self.n_blocks if self.n_blocks else 1.0

    def strict_overlap_fraction(self) -> float:
        """Of site-1 strict blocks, how many site 2 also calls strict
        (paper: 85%)."""
        strict_first = sum(self.matrix[("d", c)] for c in _CLASSES)
        if strict_first == 0:
            return 1.0
        return self.matrix[("d", "d")] / strict_first

    def either_overlap_fraction(self) -> float:
        """Of site-1 strict blocks, how many site 2 calls strict or
        relaxed (paper: 98.8%)."""
        strict_first = sum(self.matrix[("d", c)] for c in _CLASSES)
        if strict_first == 0:
            return 1.0
        either = self.matrix[("d", "d")] + self.matrix[("d", "e")]
        return either / strict_first

    def format_table(self) -> str:
        lines = [f"{'':>6}" + "".join(f"{c:>10}" for c in _CLASSES) + f"{'all':>10}"]
        for first in _CLASSES:
            row = [self.matrix[(first, second)] for second in _CLASSES]
            lines.append(
                f"{first:>6}" + "".join(f"{v:>10d}" for v in row)
                + f"{sum(row):>10d}"
            )
        totals = [
            sum(self.matrix[(first, second)] for first in _CLASSES)
            for second in _CLASSES
        ]
        lines.append(
            f"{'all':>6}" + "".join(f"{v:>10d}" for v in totals)
            + f"{self.n_blocks:>10d}"
        )
        lines.append(
            f"strict overlap: {self.strict_overlap_fraction():.1%} (paper 85%); "
            f"either overlap: {self.either_overlap_fraction():.1%} (paper 98.8%); "
            f"strong disagreement: {self.strong_disagreement_fraction():.2%}"
            f" (paper ~1.2%)"
        )
        return "\n".join(lines)


def run_cross_site(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    days: float = 14.0,
) -> CrossSiteComparison:
    """Measure the study's world from a second vantage point and compare."""
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=days)
    second = measure_world(
        study.world, study.schedule, seed=study.world.config.seed + 424242
    )
    first_cls = _to_class(study.measurement.labels)
    second_cls = _to_class(second.labels)
    matrix = {
        (a, b): int(((first_cls == a) & (second_cls == b)).sum())
        for a in _CLASSES
        for b in _CLASSES
    }
    return CrossSiteComparison(matrix=matrix, n_blocks=study.world.n_blocks)

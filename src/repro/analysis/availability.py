"""Availability-estimate validation: the paper's Figures 4 and 5.

Every block of an S51W-like survey population is probed two ways over the
same realization: exhaustively (ground truth ``A`` per round) and with the
adaptive Trinocular policy feeding the EWMA estimators (``Â_s``, ``Â_o``).
Figure 4 correlates ``Â_s`` against ``A`` (density + per-bin quartiles,
overall correlation ≈ 0.957); Figure 5 shows ``Â_o`` under-estimating ``A``
in ~94% of rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import BatchConfig, BatchRunner, MeasurementConfig
from repro.probing.rounds import RoundSchedule
from repro.simulation.scenarios import schedule_for, survey_population
from repro.stats.descriptive import BinnedQuartiles, binned_quartiles, density_grid, pearson

__all__ = ["AvailabilityValidation", "run_availability_validation"]

# Rounds to skip before comparing: the paper notes the operational value is
# conservative "once it leaves its inaccurate initial value".
WARMUP_ROUNDS = 50


@dataclass
class AvailabilityValidation:
    """Pooled per-round (A, Â_s, Â_o) samples over a survey population."""

    true_a: np.ndarray
    a_short: np.ndarray
    a_operational: np.ndarray
    n_blocks: int

    @property
    def correlation_short(self) -> float:
        """Figure 4's headline: corr(A, Â_s); paper reports 0.95685."""
        return pearson(self.true_a, self.a_short)

    def underestimate_fraction(self) -> float:
        """Figure 5's headline: P(Â_o <= A); paper reports ~94%.

        Rounds with true availability below the 0.1 operational floor are
        omitted, as the paper omits unprobed very-sparse cases.
        """
        comparable = self.true_a >= 0.1
        if not comparable.any():
            return 1.0
        under = self.a_operational[comparable] <= self.true_a[comparable]
        return float(under.mean())

    def short_quartiles(self, bin_width: float = 0.1) -> BinnedQuartiles:
        """Â_s quartiles binned by 0.1 of true A (Figure 4's white boxes)."""
        return binned_quartiles(self.true_a, self.a_short, bin_width)

    def operational_quartiles(self, bin_width: float = 0.1) -> BinnedQuartiles:
        return binned_quartiles(self.true_a, self.a_operational, bin_width)

    def density(self, estimate: str = "short", n_bins: int = 50) -> np.ndarray:
        """Normalized 2-D density of (A, estimate), the figures' heatmap."""
        values = self.a_short if estimate == "short" else self.a_operational
        return density_grid(self.true_a, values, n_bins=n_bins)

    def bias(self) -> float:
        """Mean signed error of Â_s (≈0 for an unbiased estimator)."""
        return float((self.a_short - self.true_a).mean())

    def format_table(self) -> str:
        bq = self.short_quartiles()
        lines = [
            f"blocks={self.n_blocks}  samples={len(self.true_a)}",
            f"corr(A, A_s) = {self.correlation_short:.5f}   (paper: 0.95685)",
            f"P(A_o <= A)  = {self.underestimate_fraction():.3f}     (paper: ~0.94)",
            f"mean bias of A_s = {self.bias():+.4f}",
            "",
            f"{'A bin':>8}{'count':>10}{'q1':>8}{'median':>8}{'q3':>8}",
        ]
        for i in range(len(bq.bin_centers)):
            if bq.counts[i] == 0:
                continue
            lines.append(
                f"{bq.bin_centers[i]:>8.2f}{bq.counts[i]:>10d}"
                f"{bq.q1[i]:>8.3f}{bq.median[i]:>8.3f}{bq.q3[i]:>8.3f}"
            )
        return "\n".join(lines)


def run_availability_validation(
    n_blocks: int = 120,
    seed: int = 0,
    schedule: RoundSchedule | None = None,
    config: MeasurementConfig | None = None,
) -> AvailabilityValidation:
    """Measure a survey population and pool per-round estimate/truth pairs."""
    schedule = schedule or schedule_for("S51W")
    config = config or MeasurementConfig()
    blocks = survey_population(n_blocks, seed=seed)
    # The resilient runner reproduces the legacy per-block seeding
    # bit-for-bit while isolating any per-block failure.
    runner = BatchRunner(BatchConfig(measurement=config))
    batch = runner.run(blocks, schedule, seed=seed + 999)

    true_parts = []
    short_parts = []
    oper_parts = []
    measured = 0
    for result in batch.measurements:
        if result.skipped:
            continue
        measured += 1
        sl = slice(WARMUP_ROUNDS, None)
        true_parts.append(result.true_availability[sl])
        short_parts.append(result.a_short[sl])
        oper_parts.append(result.a_operational[sl])

    return AvailabilityValidation(
        true_a=np.concatenate(true_parts),
        a_short=np.concatenate(short_parts),
        a_operational=np.concatenate(oper_parts),
        n_blocks=measured,
    )

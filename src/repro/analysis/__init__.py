"""Experiment drivers: one module per table or figure of the paper.

Every module exposes a ``run_*`` function returning a result dataclass
with the figure/table's data and a ``format_table`` / ``format_series``
text rendering, so benchmarks can print the same rows the paper reports.

``GlobalStudy`` bundles the shared substrate of the section 4/5 analyses:
one generated world, its measurement, and the geolocation view.
"""

from repro.analysis.study import GlobalStudy
from repro.analysis.availability import (
    AvailabilityValidation,
    run_availability_validation,
)
from repro.analysis.diurnal_validation import (
    DiurnalValidation,
    run_diurnal_validation,
)
from repro.analysis.sensitivity import SensitivitySweep, run_sensitivity_sweep
from repro.analysis.cross_site import CrossSiteComparison, run_cross_site
from repro.analysis.frequency import FrequencyCdf, run_frequency_cdf
from repro.analysis.longterm import LongTermTrend, run_longterm_trend
from repro.analysis.mapping import (
    CountryTable,
    RegionTable,
    WorldMaps,
    run_country_table,
    run_region_table,
    run_world_maps,
)
from repro.analysis.phase import PhaseLongitude, run_phase_longitude
from repro.analysis.allocation import AllocationTrend, run_allocation_trend
from repro.analysis.economics import (
    EconomicsAnova,
    GdpScatter,
    run_economics_anova,
    run_gdp_scatter,
)
from repro.analysis.linktech import LinkTypeStudy, run_linktype_study
from repro.analysis.organizations import OrgTable, run_org_table
from repro.analysis.outages import OutageValidation, run_outage_validation
from repro.analysis.census import CensusEstimate, run_census

__all__ = [
    "AllocationTrend",
    "AvailabilityValidation",
    "CensusEstimate",
    "OrgTable",
    "OutageValidation",
    "run_org_table",
    "run_census",
    "run_outage_validation",
    "CountryTable",
    "CrossSiteComparison",
    "DiurnalValidation",
    "EconomicsAnova",
    "FrequencyCdf",
    "GdpScatter",
    "GlobalStudy",
    "LinkTypeStudy",
    "LongTermTrend",
    "PhaseLongitude",
    "RegionTable",
    "SensitivitySweep",
    "WorldMaps",
    "run_allocation_trend",
    "run_availability_validation",
    "run_country_table",
    "run_cross_site",
    "run_diurnal_validation",
    "run_economics_anova",
    "run_frequency_cdf",
    "run_gdp_scatter",
    "run_linktype_study",
    "run_longterm_trend",
    "run_phase_longitude",
    "run_region_table",
    "run_sensitivity_sweep",
    "run_world_maps",
]

"""Dominant-frequency distribution: the paper's Figure 10.

For every measured block, the strongest non-DC frequency of its Â_s
spectrum, expressed in cycles per day.  The paper's CDF shows ~25% of
blocks peaking at 1 cycle/day and a ~3% bump at ~4.36 cycles/day — the
artifact of restarting the prober every 5.5 hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy

__all__ = ["FrequencyCdf", "run_frequency_cdf"]


@dataclass
class FrequencyCdf:
    """Dominant frequency per block, in cycles/day."""

    cycles_per_day: np.ndarray
    restart_cycles_per_day: float

    @property
    def n_blocks(self) -> int:
        return len(self.cycles_per_day)

    def fraction_in(self, lo: float, hi: float) -> float:
        inside = (self.cycles_per_day >= lo) & (self.cycles_per_day < hi)
        return float(inside.mean()) if self.n_blocks else 0.0

    def fraction_daily(self, tolerance: float = 0.12) -> float:
        """Mass at 1 cycle/day (paper: ~25%)."""
        return self.fraction_in(1.0 - tolerance, 1.0 + tolerance)

    def fraction_artifact(self, tolerance: float = 0.25) -> float:
        """Mass at the prober-restart frequency (paper: ~3%)."""
        f = self.restart_cycles_per_day
        return self.fraction_in(f - tolerance, f + tolerance)

    def cdf(self, grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(frequencies, cumulative fraction), the figure's curve."""
        if grid is None:
            grid = np.linspace(0.0, 8.0, 161)
        sorted_f = np.sort(self.cycles_per_day)
        cum = np.searchsorted(sorted_f, grid, side="right") / max(self.n_blocks, 1)
        return grid, cum

    def format_series(self) -> str:
        lines = [
            f"blocks: {self.n_blocks}",
            f"dominant at 1 cycle/day: {self.fraction_daily():.1%} (paper ~25%)",
            f"dominant at ~{self.restart_cycles_per_day:.2f} c/d restart artifact: "
            f"{self.fraction_artifact():.1%} (paper ~3%)",
            "",
            f"{'cycles/day':>12}{'CDF':>8}",
        ]
        grid, cum = self.cdf(np.arange(0.0, 6.5, 0.5))
        for f, c in zip(grid, cum):
            lines.append(f"{f:>12.1f}{c:>8.2f}")
        return "\n".join(lines)


def run_frequency_cdf(
    study: GlobalStudy | None = None, n_blocks: int = 8000, seed: int = 0
) -> FrequencyCdf:
    """Dominant-frequency CDF over a measured world (35-day A12W style)."""
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed)
    restart_s = study.schedule.restart_interval_s
    restart_cpd = 86400.0 / restart_s if restart_s > 0 else float("nan")
    return FrequencyCdf(
        cycles_per_day=study.measurement.dominant_cycles_per_day.copy(),
        restart_cycles_per_day=restart_cpd,
    )

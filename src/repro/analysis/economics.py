"""Economic correlations: the paper's Figure 16 and Table 5.

Figure 16 scatters each country's measured diurnal fraction against
per-capita GDP and fits a (weak, negative) line — confidence coefficient
-0.526 in the paper.  Table 5 runs ANOVA over five country-level factors —
per-capita GDP, Internet users per host, per-capita electricity
consumption, and the age of first/mean address allocation — reporting
p-values for every single factor (diagonal) and pairwise combination
(off-diagonal).  The paper finds GDP dominant (p = 6.61e-8), with mean
allocation age (p = 0.031) and electricity x mean-allocation-age
(p = 0.0015) also significant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mapping import CountryTable, run_country_table
from repro.analysis.study import GlobalStudy
from repro.simulation.countries import country_by_code
from repro.stats.anova import pairwise_anova
from repro.stats.regression import LinearFit, fit_line

__all__ = [
    "EconomicsAnova",
    "GdpScatter",
    "run_economics_anova",
    "run_gdp_scatter",
]

# Factor names in the paper's Table 5 ordering.
FACTORS = ("gdp", "users_per_host", "electricity", "first_alloc_age", "mean_alloc_age")


@dataclass
class GdpScatter:
    """Country points for Figure 16."""

    codes: list
    gdp: np.ndarray
    fraction_diurnal: np.ndarray

    def fit(self) -> LinearFit:
        return fit_line(self.gdp, self.fraction_diurnal)

    def correlation(self) -> float:
        """Paper: -0.526 (weak fits are expected with coarse GDP data)."""
        return self.fit().r

    def high_diurnal_low_gdp(self, frac_cut: float = 0.18) -> bool:
        """Paper: countries above ~0.15 diurnal "generally" sit under
        ~$15-18k GDP; we test the slightly looser cut that tolerates
        sampling noise in mid-size countries."""
        high = self.fraction_diurnal > frac_cut
        if not high.any():
            return True
        return bool(self.gdp[high].max() < 20000)

    def format_series(self) -> str:
        fit = self.fit()
        lines = [
            f"countries: {len(self.codes)}",
            f"corr(GDP, diurnal frac) = {fit.r:+.3f} (paper: -0.526)",
            f"slope = {fit.slope:+.3e} per US$",
            f"diurnal>0.15 implies GDP < $20k: {self.high_diurnal_low_gdp()}",
        ]
        return "\n".join(lines)


def run_gdp_scatter(
    table: CountryTable | None = None,
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
) -> GdpScatter:
    table = table or run_country_table(study=study, n_blocks=n_blocks, seed=seed)
    return GdpScatter(
        codes=[row.code for row in table.rows],
        gdp=np.array([row.gdp_pc for row in table.rows]),
        fraction_diurnal=np.array([row.fraction_diurnal for row in table.rows]),
    )


@dataclass
class EconomicsAnova:
    """The paper's Table 5: single and pairwise factor p-values."""

    p_values: dict
    n_countries: int

    def p_of(self, a: str, b: str | None = None) -> float:
        b = b or a
        key = (a, b) if (a, b) in self.p_values else (b, a)
        return self.p_values[key]

    def significant(self, alpha: float = 0.05) -> list:
        return sorted(
            [pair for pair, p in self.p_values.items() if p < alpha],
            key=lambda pair: self.p_values[pair],
        )

    def gdp_dominant(self) -> bool:
        """GDP must be the most significant single factor (paper: 6.6e-8)."""
        singles = {f: self.p_of(f) for f in FACTORS}
        return min(singles, key=singles.get) == "gdp"

    def format_table(self) -> str:
        lines = [
            f"{'':>16}" + "".join(f"{f[:12]:>14}" for f in FACTORS),
        ]
        for i, a in enumerate(FACTORS):
            cells = []
            for j, b in enumerate(FACTORS):
                if j < i:
                    cells.append(f"{'':>14}")
                else:
                    p = self.p_of(a, b)
                    mark = "*" if p < 0.05 else " "
                    cells.append(f"{p:>13.3g}{mark}")
            lines.append(f"{a[:14]:>16}" + "".join(cells))
        lines.append(
            "significant (p<0.05): "
            + ", ".join("x".join(sorted(set(pair))) for pair in self.significant())
        )
        lines.append(
            "(paper: gdp 6.61e-8; electricity x mean_alloc_age 0.0015; "
            "mean_alloc_age 0.031)"
        )
        return "\n".join(lines)


def run_economics_anova(
    table: CountryTable | None = None,
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
) -> EconomicsAnova:
    """Country-level ANOVA of measured diurnal fraction vs five factors."""
    table = table or run_country_table(study=study, n_blocks=n_blocks, seed=seed)
    rows = table.rows
    y = np.array([row.fraction_diurnal for row in rows])
    countries = [country_by_code(row.code) for row in rows]
    factors = {
        "gdp": np.array([c.gdp_pc for c in countries], dtype=float),
        "users_per_host": np.array([c.users_per_host for c in countries]),
        "electricity": np.array([c.elec_kwh_pc for c in countries], dtype=float),
        "first_alloc_age": np.array(
            [2013.0 - c.first_alloc_year for c in countries]
        ),
        "mean_alloc_age": np.array(
            [2013.0 - c.mean_alloc_year for c in countries]
        ),
    }
    return EconomicsAnova(
        p_values=pairwise_anova(y, factors), n_countries=len(rows)
    )

"""Phase-versus-longitude analysis: the paper's Figure 14.

Diurnal blocks wake with the local morning, so the FFT phase of the
1-cycle/day component tracks longitude.  The paper unrolls phase into the
window centred on each block's longitude (both wrap the circle), finds
correlation 0.835 for strict and 0.763 for relaxed diurnal blocks, notes
the 100-140°E anomaly (China's single timezone), and builds a phase →
longitude predictor good to ±20° over most of the range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.stats.descriptive import pearson, unroll_phase

__all__ = ["PhaseLongitude", "run_phase_longitude"]


@dataclass
class PhaseLongitude:
    """Phase/longitude pairs for one diurnal population."""

    phases: np.ndarray      # raw FFT phase, radians
    longitudes: np.ndarray  # degrees
    population: str         # "strict" or "relaxed"

    @property
    def n_blocks(self) -> int:
        return len(self.phases)

    def unrolled(self) -> np.ndarray:
        """Phase unrolled around each block's longitude (radians)."""
        return unroll_phase(self.phases, np.radians(self.longitudes))

    def correlation(self) -> float:
        """Figure 14's headline (paper: 0.835 strict / 0.763 relaxed)."""
        return pearson(self.unrolled(), np.radians(self.longitudes))

    def correlation_excluding(self, lon_lo: float, lon_hi: float) -> float:
        """Correlation with a longitude band removed (the China anomaly)."""
        keep = (self.longitudes < lon_lo) | (self.longitudes > lon_hi)
        return pearson(
            self.unrolled()[keep], np.radians(self.longitudes[keep])
        )

    def predictor(self, n_bins: int = 36) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Phase→longitude predictor: per-phase-bin mean and std (Fig 14c).

        Returns (bin centres in radians, mean longitude, std in degrees).
        """
        edges = np.linspace(-np.pi, np.pi, n_bins + 1)
        centers = (edges[:-1] + edges[1:]) / 2
        mean = np.full(n_bins, np.nan)
        std = np.full(n_bins, np.nan)
        idx = np.clip(
            np.digitize(self.phases, edges) - 1, 0, n_bins - 1
        )
        for b in range(n_bins):
            members = self.longitudes[idx == b]
            if len(members) >= 5:
                # Circular mean over longitude, then dispersion around it.
                angles = np.radians(members)
                center = np.angle(np.exp(1j * angles).mean())
                spread = np.degrees(
                    np.abs(np.angle(np.exp(1j * (angles - center))))
                )
                mean[b] = np.degrees(center)
                std[b] = np.sqrt((spread**2).mean())
        return centers, mean, std

    def predictor_precision(self) -> float:
        """Median predictor std over populated bins (paper: ±20° typical)."""
        _, _, std = self.predictor()
        valid = ~np.isnan(std)
        return float(np.median(std[valid])) if valid.any() else float("nan")

    def format_series(self) -> str:
        lines = [
            f"population: {self.population} ({self.n_blocks} blocks)",
            f"corr(unrolled phase, longitude) = {self.correlation():.3f}"
            f" (paper: {'0.835' if self.population == 'strict' else '0.763'})",
            f"corr excluding 100-140E       = "
            f"{self.correlation_excluding(100, 140):.3f}",
            f"phase->longitude precision     = ±{self.predictor_precision():.0f}°",
        ]
        return "\n".join(lines)


def run_phase_longitude(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    population: str = "strict",
) -> PhaseLongitude:
    """Collect phase/longitude pairs for geolocated diurnal blocks."""
    if population not in ("strict", "relaxed"):
        raise ValueError("population must be 'strict' or 'relaxed'")
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed)
    lats, lons, located = study.located()
    if population == "strict":
        mask = study.measurement.strict_mask & located
    else:
        mask = study.measurement.diurnal_mask & located
    return PhaseLongitude(
        phases=study.measurement.phases[mask],
        longitudes=lons[mask],
        population=population,
    )

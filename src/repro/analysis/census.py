"""Internet census application (paper section 5.6).

The paper's closing application: a fast full-IPv4 snapshot estimates each
block's availability at *one* time of day, which is representative only
for non-diurnal blocks; diurnal blocks need measurements across the day.
This analysis quantifies that error on the simulated world: estimate the
number of active, responsive addresses from a single-hour snapshot, then
apply the diurnal correction (snapshotting diurnal blocks at several
times of day) and compare both against the true daily mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.study import GlobalStudy
from repro.simulation.fastsim import synthesize_availability

__all__ = ["CensusEstimate", "run_census"]


@dataclass
class CensusEstimate:
    """Active-address estimates at each snapshot hour."""

    hours: np.ndarray
    snapshot: np.ndarray      # naive single-hour estimates
    corrected: np.ndarray     # diurnal blocks averaged over the day
    truth: float              # true daily-mean active addresses

    def snapshot_errors(self) -> np.ndarray:
        return np.abs(self.snapshot - self.truth) / self.truth

    def corrected_errors(self) -> np.ndarray:
        return np.abs(self.corrected - self.truth) / self.truth

    def worst_snapshot_error(self) -> float:
        return float(self.snapshot_errors().max())

    def worst_corrected_error(self) -> float:
        return float(self.corrected_errors().max())

    def format_series(self) -> str:
        lines = [
            f"true daily-mean active addresses: {self.truth:,.0f}",
            f"{'UTC hour':>9}{'snapshot':>12}{'err':>8}{'corrected':>12}{'err':>8}",
        ]
        for h, s, c in zip(self.hours, self.snapshot, self.corrected):
            lines.append(
                f"{h:>9.0f}{s:>12,.0f}{abs(s - self.truth) / self.truth:>8.2%}"
                f"{c:>12,.0f}{abs(c - self.truth) / self.truth:>8.2%}"
            )
        lines.append(
            f"worst error: snapshot {self.worst_snapshot_error():.2%} -> "
            f"corrected {self.worst_corrected_error():.2%}"
        )
        return "\n".join(lines)


def run_census(
    study: GlobalStudy | None = None,
    n_blocks: int = 8000,
    seed: int = 0,
    hours: np.ndarray | None = None,
) -> CensusEstimate:
    """Estimate active addresses from snapshots, with/without correction.

    A block contributes ``n_active × A(t)`` responsive addresses at time
    ``t``.  The naive census multiplies by a single snapshot ``A(t0)``;
    the corrected census does so only for blocks *classified*
    non-diurnal, and averages diurnal blocks over six times of day — the
    procedure the paper recommends.
    """
    study = study or GlobalStudy.run(n_blocks=n_blocks, seed=seed, days=14.0)
    world = study.world
    hours = np.arange(0, 24, 3.0) if hours is None else np.asarray(hours, float)
    rng = np.random.default_rng(seed + 2_024)

    # One noiseless day of availability at 30-minute resolution.
    day_times = np.arange(0, 86400.0, 1800.0)
    indices = np.arange(world.n_blocks)
    saved_sigma = world.noise_sigma
    world.noise_sigma = np.zeros_like(saved_sigma)
    try:
        a_day = synthesize_availability(world, indices, day_times, rng)
    finally:
        world.noise_sigma = saved_sigma
    weights = world.n_active.astype(np.float64)

    truth = float((weights[:, None] * a_day).sum(axis=0).mean())
    diurnal = study.measurement.diurnal_mask

    snapshot = []
    corrected = []
    sample_hours = np.linspace(0, 21, 6)
    sample_cols = [int(h * 2) for h in sample_hours]
    diurnal_mean = (
        weights[diurnal][:, None] * a_day[diurnal][:, sample_cols]
    ).sum(axis=0).mean()
    for hour in hours:
        col = int(hour * 2)
        naive = float((weights * a_day[:, col]).sum())
        snapshot.append(naive)
        fixed = float(
            (weights[~diurnal] * a_day[~diurnal, col]).sum() + diurnal_mean
        )
        corrected.append(fixed)

    return CensusEstimate(
        hours=hours,
        snapshot=np.array(snapshot),
        corrected=np.array(corrected),
        truth=truth,
    )

"""Dataset persistence and the named-scenario registry.

``io`` saves and loads worlds and measurements as ``.npz`` archives and
exports analysis tables as CSV, so expensive global runs can be reused
across analyses (the paper likewise publishes its derived datasets).
``registry`` names the reproducible dataset configurations.
"""

from repro.datasets.io import (
    ensure_measurement,
    iter_observation_stream,
    load_measurement,
    load_world_arrays,
    save_measurement,
    save_world_arrays,
    write_csv,
)
from repro.datasets.registry import DATASETS, DatasetSpec, dataset, list_datasets

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset",
    "ensure_measurement",
    "iter_observation_stream",
    "list_datasets",
    "load_measurement",
    "load_world_arrays",
    "save_measurement",
    "save_world_arrays",
    "write_csv",
]

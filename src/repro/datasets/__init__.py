"""Dataset persistence and the named-scenario registry.

``io`` saves and loads worlds and measurements as ``.npz`` archives and
exports analysis tables as CSV, so expensive global runs can be reused
across analyses (the paper likewise publishes its derived datasets).
Writers are atomic (temp file + fsync + rename) and archives are
checksummed; loaders verify digests and schema versions, quarantine
damage, and raise :class:`CorruptCheckpointError` /
:class:`CheckpointVersionError` instead of numpy internals.
``registry`` names the reproducible dataset configurations.
"""

from repro.datasets.io import (
    CheckpointVersionError,
    CorruptCheckpointError,
    ensure_measurement,
    iter_observation_stream,
    load_batch_checkpoint,
    load_measurement,
    load_world_arrays,
    save_batch_checkpoint,
    save_measurement,
    save_world_arrays,
    write_csv,
)
from repro.datasets.registry import DATASETS, DatasetSpec, dataset, list_datasets

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "CheckpointVersionError",
    "CorruptCheckpointError",
    "dataset",
    "ensure_measurement",
    "iter_observation_stream",
    "list_datasets",
    "load_batch_checkpoint",
    "load_measurement",
    "load_world_arrays",
    "save_batch_checkpoint",
    "save_measurement",
    "save_world_arrays",
    "write_csv",
]

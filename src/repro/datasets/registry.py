"""Named dataset configurations, mirroring the paper's dataset table."""

from __future__ import annotations

from dataclasses import dataclass

from repro.probing.rounds import RoundSchedule
from repro.simulation.internet import WorldConfig
from repro.simulation.scenarios import schedule_for

__all__ = ["DATASETS", "DatasetSpec", "dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """One reproducible dataset: a schedule plus world/population config.

    Attributes:
        name: the paper's dataset name (or an analogue).
        kind: "survey" (exhaustive, address-level population) or
            "adaptive" (Trinocular-style over a generated world).
        description: what the paper used it for.
        scenario: schedule name in :mod:`repro.simulation.scenarios`.
        default_blocks: default population size (scaled from the paper).
        seed: base seed; vantage analogues differ only in probing seeds.
    """

    name: str
    kind: str
    description: str
    scenario: str
    default_blocks: int
    seed: int

    def schedule(self) -> RoundSchedule:
        return schedule_for(self.scenario)

    def world_config(self, n_blocks: int | None = None) -> WorldConfig:
        if self.kind != "adaptive":
            raise ValueError(f"dataset {self.name} is not world-based")
        return WorldConfig(
            n_blocks=n_blocks or self.default_blocks, seed=self.seed
        )


DATASETS = {
    "S51W": DatasetSpec(
        name="S51W",
        kind="survey",
        description=(
            "Two-week exhaustive survey of ~2% of blocks; ground truth for "
            "the section 3 validations (paper: 29k blocks from 2012-11-16)."
        ),
        scenario="S51W",
        default_blocks=150,
        seed=51,
    ),
    "A12W": DatasetSpec(
        name="A12W",
        kind="adaptive",
        description=(
            "35-day Trinocular measurement from Los Angeles with 5.5-hour "
            "prober restarts (paper: 3.7M blocks from 2013-04-24)."
        ),
        scenario="A12W",
        default_blocks=20000,
        seed=12,
    ),
    "A12J": DatasetSpec(
        name="A12J",
        kind="adaptive",
        description="Concurrent vantage at Keio (Japan); same world, "
        "independent probing randomness.",
        scenario="A12J",
        default_blocks=20000,
        seed=12,
    ),
    "A12C": DatasetSpec(
        name="A12C",
        kind="adaptive",
        description="Concurrent vantage at Colorado State; same world, "
        "independent probing randomness.",
        scenario="A12C",
        default_blocks=20000,
        seed=12,
    ),
    "A16ALL": DatasetSpec(
        name="A16ALL",
        kind="adaptive",
        description=(
            "2014-04 measurement policy with weekly prober restarts, "
            "adopted to suppress the 4.3 cycles/day Figure 10 artifact."
        ),
        scenario="A16ALL",
        default_blocks=20000,
        seed=16,
    ),
}


def dataset(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None


def list_datasets() -> list:
    return sorted(DATASETS)

"""On-disk persistence for worlds, measurements, tables, and checkpoints.

Every writer here is **crash-safe** and every loader is **corruption-
safe**, because multi-week campaigns die in the worst places:

* writes go to a temp file in the target directory, are flushed and
  ``fsync``-ed, then published with ``os.replace`` (and a directory
  fsync), so a reader can only ever observe the old complete file or
  the new complete file — never a torn one;
* archives embed a schema version and a SHA-256 digest of their
  contents; loaders verify both before reconstructing anything, so a
  truncated, bit-flipped, or stale file surfaces as a typed
  :class:`CorruptCheckpointError` / :class:`CheckpointVersionError`
  naming the file — never as numpy garbage or an opaque ``KeyError``;
* corrupt files are **quarantined**: renamed aside to
  ``<name>.quarantine.<n>`` so the damaged bytes are preserved for
  forensics and a resumed run can never load them again.

Crash points (:func:`repro.faults.crash.crashpoint`) mark the
atomic-write windows so the chaos harness can kill a run mid-write and
assert that resume is bit-identical.
"""

from __future__ import annotations

import csv
import hashlib
import os
from pathlib import Path

import numpy as np

from repro.faults.crash import crashpoint
from repro.obs.registry import NULL_REGISTRY
from repro.probing.rounds import RoundSchedule
from repro.simulation.fastsim import FastMeasurement
from repro.simulation.internet import InternetWorld

__all__ = [
    "CheckpointVersionError",
    "CorruptCheckpointError",
    "atomic_write_text",
    "ensure_measurement",
    "iter_observation_stream",
    "load_batch_checkpoint",
    "load_measurement",
    "load_world_arrays",
    "save_batch_checkpoint",
    "save_measurement",
    "save_world_arrays",
    "set_metrics",
    "write_csv",
]


class CorruptCheckpointError(ValueError):
    """A durable archive failed integrity or shape validation.

    Raised (instead of propagating numpy/zip internals) whenever a
    ``.npz`` written by this module cannot be loaded exactly as saved.
    ``quarantined_to`` is the path the damaged file was renamed to, or
    None when quarantine was disabled or impossible.
    """

    def __init__(
        self,
        path: str | Path,
        reason: str,
        quarantined_to: Path | None = None,
    ) -> None:
        message = f"{path} is corrupt or unreadable: {reason}"
        if quarantined_to is not None:
            message += f" (quarantined to {quarantined_to})"
        super().__init__(message)
        self.path = Path(path)
        self.reason = reason
        self.quarantined_to = quarantined_to


class CheckpointVersionError(CorruptCheckpointError):
    """A durable archive has a schema version this code cannot load.

    The file is intact (or predates digests entirely) but was written
    by a different schema; it is *not* quarantined — rerunning with the
    matching code version, or recomputing, is the fix.
    """

    def __init__(
        self, path: str | Path, found: object, expected: int
    ) -> None:
        ValueError.__init__(
            self,
            f"{path} has schema version {found}, expected {expected}; "
            f"recompute it or load it with the code that wrote it",
        )
        self.path = Path(path)
        self.reason = f"schema version {found}, expected {expected}"
        self.quarantined_to = None
        self.found = found
        self.expected = expected


class _Instruments:
    """Pre-bound persistence metrics (null registry by default)."""

    __slots__ = ("enabled", "saves", "loads", "entries_saved",
                 "entries_loaded", "checkpoint_bytes", "replayed",
                 "corruption", "quarantined")

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.saves = registry.counter("io_checkpoint_saves_total")
        self.loads = registry.counter("io_checkpoint_loads_total")
        self.entries_saved = registry.counter(
            "io_checkpoint_entries_saved_total"
        )
        self.entries_loaded = registry.counter(
            "io_checkpoint_entries_loaded_total"
        )
        self.checkpoint_bytes = registry.gauge("io_checkpoint_bytes")
        self.replayed = registry.counter("io_replayed_observations_total")
        self.corruption = registry.counter("io_corruption_detected_total")
        self.quarantined = registry.counter("io_files_quarantined_total")


_obs = _Instruments(NULL_REGISTRY)


def set_metrics(registry) -> None:
    """Point this module's persistence metrics at ``registry``.

    Pass ``None`` to turn instrumentation back off.  Usually called
    through :func:`repro.obs.install_metrics`.
    """
    global _obs
    _obs = _Instruments(registry if registry is not None else NULL_REGISTRY)


# --- durable npz container -------------------------------------------------
#
# Every archive carries two reserved keys: "__version__" (per-format
# schema version) and "__digest__" (SHA-256 over every other entry's
# name, dtype, shape, and bytes, in sorted key order).  The digest is
# computed over logical content, not file bytes, so it survives any
# container-level recompression and pinpoints *content* damage.

_VERSION_KEY = "__version__"
_DIGEST_KEY = "__digest__"
_RESERVED_KEYS = (_VERSION_KEY, _DIGEST_KEY)

_MEASUREMENT_VERSION = 2
_WORLD_VERSION = 2
_CHECKPOINT_VERSION = 2


def _content_digest(arrays: dict) -> np.ndarray:
    digest = hashlib.sha256()
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return np.frombuffer(digest.digest(), dtype=np.uint8).copy()


def _fsync_dir(directory: Path) -> None:
    # Persist the rename itself.  Directories cannot be opened for
    # fsync on some platforms; losing that is a durability (not a
    # correctness) concession there.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, kind: str, writer) -> None:
    """Write via temp file + fsync + ``os.replace`` + directory fsync.

    ``writer(handle)`` receives the open binary temp-file handle.  The
    three crash points bracket the publication window for chaos tests.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    crashpoint(f"io.{kind}.begin")
    with open(tmp, "wb") as handle:
        writer(handle)
        handle.flush()
        os.fsync(handle.fileno())
    crashpoint(f"io.{kind}.tmp_written")
    os.replace(tmp, path)
    crashpoint(f"io.{kind}.replaced")
    _fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str, kind: str = "text") -> Path:
    """Crash-safe text file publication (temp + fsync + rename).

    The all-or-nothing counterpart of :func:`Path.write_text`, used for
    telemetry artifacts that must never be observed torn — flight
    recorder dumps, manifests written at failure points.  ``kind``
    names the crash-point family (``io.<kind>.begin`` etc.) so chaos
    tests can kill the writer inside the publication window.
    """
    path = Path(path)
    _atomic_write(path, kind, lambda handle: handle.write(text.encode("utf-8")))
    return path


def _save_npz(path: str | Path, kind: str, version: int, arrays: dict) -> Path:
    path = Path(path)
    arrays = dict(arrays)
    arrays[_VERSION_KEY] = np.array([version], dtype=np.int64)
    arrays[_DIGEST_KEY] = _content_digest(arrays)
    _atomic_write(
        path, kind, lambda handle: np.savez_compressed(handle, **arrays)
    )
    return path


def _quarantine(path: Path) -> Path | None:
    """Rename a damaged file aside; returns the new path (None if failed)."""
    for i in range(10_000):
        target = path.with_name(f"{path.name}.quarantine.{i}")
        if target.exists():
            continue
        try:
            os.replace(path, target)
        except OSError:
            return None
        _fsync_dir(path.parent)
        _obs.quarantined.inc()
        return target
    return None


def _load_npz(
    path: str | Path, kind: str, expected_version: int, quarantine: bool
) -> dict:
    """Read, digest-verify, and version-check one durable archive.

    Returns the content arrays with reserved keys stripped.  Damage
    quarantines the file and raises :class:`CorruptCheckpointError`;
    a schema mismatch raises :class:`CheckpointVersionError` and leaves
    the (intact) file in place.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise
    except Exception as exc:
        _obs.corruption.inc()
        quarantined_to = _quarantine(path) if quarantine else None
        raise CorruptCheckpointError(
            path,
            f"not a loadable npz archive ({type(exc).__name__}: {exc})",
            quarantined_to,
        ) from exc

    stored_digest = arrays.pop(_DIGEST_KEY, None)
    version = arrays.pop(_VERSION_KEY, None)
    if stored_digest is None or version is None:
        raise CheckpointVersionError(
            path, "pre-durability (no digest)", expected_version
        )
    check = dict(arrays)
    check[_VERSION_KEY] = version
    if not np.array_equal(_content_digest(check), stored_digest):
        _obs.corruption.inc()
        quarantined_to = _quarantine(path) if quarantine else None
        raise CorruptCheckpointError(
            path, f"{kind} content digest mismatch", quarantined_to
        )
    if int(version[0]) != expected_version:
        raise CheckpointVersionError(path, int(version[0]), expected_version)
    return arrays


def _require(condition: bool, path: Path, reason: str) -> None:
    if not condition:
        _obs.corruption.inc()
        raise CorruptCheckpointError(path, reason)


def save_measurement(path: str | Path, measurement: FastMeasurement) -> Path:
    """Save a world measurement as an atomic, checksummed ``.npz``."""
    schedule = measurement.schedule
    return _save_npz(
        path,
        "measurement",
        _MEASUREMENT_VERSION,
        {
            "labels": measurement.labels,
            "phases": measurement.phases,
            "dominant_cycles_per_day": measurement.dominant_cycles_per_day,
            "diurnal_amplitude": measurement.diurnal_amplitude,
            "mean_availability": measurement.mean_availability,
            "schedule": _schedule_to_array(schedule),
        },
    )


_MEASUREMENT_SERIES = (
    "labels",
    "phases",
    "dominant_cycles_per_day",
    "diurnal_amplitude",
    "mean_availability",
)


def load_measurement(
    path: str | Path, quarantine: bool = True
) -> FastMeasurement:
    """Load a measurement previously stored by :func:`save_measurement`.

    Verifies the embedded digest and schema version, then validates
    array shapes up front; any violation raises a typed error naming
    the file instead of surfacing numpy internals downstream.
    """
    path = Path(path)
    data = _load_npz(path, "measurement", _MEASUREMENT_VERSION, quarantine)
    for name in _MEASUREMENT_SERIES + ("schedule",):
        _require(name in data, path, f"missing array {name!r}")
    _require(
        data["schedule"].shape == (4,),
        path,
        f"schedule has shape {data['schedule'].shape}, expected (4,)",
    )
    n = len(data["labels"])
    for name in _MEASUREMENT_SERIES:
        _require(
            data[name].ndim == 1 and len(data[name]) == n,
            path,
            f"{name} has shape {data[name].shape}, expected ({n},)",
        )
    return FastMeasurement(
        labels=data["labels"],
        phases=data["phases"],
        dominant_cycles_per_day=data["dominant_cycles_per_day"],
        diurnal_amplitude=data["diurnal_amplitude"],
        mean_availability=data["mean_availability"],
        schedule=_schedule_from_array(data["schedule"]),
    )


# World fields that round-trip as plain numeric arrays.
_WORLD_NUMERIC = (
    "block_id",
    "country_idx",
    "lat",
    "lon",
    "asn",
    "alloc_year",
    "is_diurnal",
    "n_active",
    "a_high",
    "a_low",
    "onset_frac",
    "uptime_frac",
    "noise_sigma",
    "lease_cpd",
    "lease_amp",
    "lease_phase",
)


def save_world_arrays(path: str | Path, world: InternetWorld) -> Path:
    """Save a world's per-block arrays (not its registry views).

    The generator is deterministic, so ``(n_blocks, seed)`` plus these
    arrays fully describe the dataset; registry views are rebuilt on load
    via :func:`repro.simulation.internet.generate_world`.
    """
    arrays = {name: getattr(world, name) for name in _WORLD_NUMERIC}
    arrays["config"] = np.array([world.config.n_blocks, world.config.seed])
    return _save_npz(path, "world", _WORLD_VERSION, arrays)


def load_world_arrays(path: str | Path, quarantine: bool = True) -> dict:
    """Load world arrays saved by :func:`save_world_arrays`.

    Returns a dict of arrays plus ``n_blocks``/``seed`` under ``config``,
    after digest/version verification and shape validation.
    """
    path = Path(path)
    data = _load_npz(path, "world", _WORLD_VERSION, quarantine)
    for name in _WORLD_NUMERIC + ("config",):
        _require(name in data, path, f"missing array {name!r}")
    _require(
        data["config"].shape == (2,),
        path,
        f"config has shape {data['config'].shape}, expected (2,)",
    )
    n_blocks = int(data["config"][0])
    for name in _WORLD_NUMERIC:
        _require(
            data[name].ndim == 1 and len(data[name]) == n_blocks,
            path,
            f"{name} has shape {data[name].shape}, expected ({n_blocks},)",
        )
    return data


def ensure_measurement(
    dataset_name: str,
    cache_dir: str | Path,
    n_blocks: int | None = None,
) -> FastMeasurement:
    """Load a named dataset's measurement from cache, or compute and save.

    The expensive step of every global analysis is measuring a world;
    caching it under ``cache_dir/<name>-<blocks>.npz`` lets analyses and
    notebooks share one run, the way the paper's derived datasets are
    shared.  Only "adaptive" datasets (A12W and friends) are world-based.
    The cache self-heals: a corrupt entry is quarantined and a stale
    schema version is recomputed, both transparently.
    """
    from repro.datasets.registry import dataset
    from repro.simulation.fastsim import measure_world
    from repro.simulation.internet import generate_world

    spec = dataset(dataset_name)
    config = spec.world_config(n_blocks)
    path = Path(cache_dir) / f"{spec.name}-{config.n_blocks}.npz"
    if path.exists():
        try:
            return load_measurement(path)
        except CorruptCheckpointError:
            pass  # quarantined (or stale); fall through to recompute
    world = generate_world(config)
    measurement = measure_world(world, spec.schedule())
    save_measurement(path, measurement)
    return measurement


# --- batch checkpoints -----------------------------------------------------
#
# A checkpoint is one .npz archive holding every completed entry of a
# BatchRunner run, keyed by batch index: measurement entries under
# "m{i}_*" keys, failure entries under "f{i}_*".  Writes are atomic and
# checksummed, so a run killed mid-checkpoint leaves the previous
# complete checkpoint intact, and a damaged file is quarantined instead
# of resuming from garbage.

# DiurnalReport scalar fields serialized as one float vector, in order.
_REPORT_FIELDS = (
    "diurnal_k",
    "diurnal_amplitude",
    "dominant_k",
    "dominant_cycles_per_day",
    "strongest_other",
    "strongest_harmonic",
    "phase",
)

_MEASUREMENT_ARRAYS = (
    "positives",
    "totals",
    "states",
    "a_short",
    "a_long",
    "a_operational",
    "true_availability",
)


def _label_codes():
    from repro.core.classify import DiurnalBatch

    return DiurnalBatch.LABEL_CODES


def _report_to_array(report) -> np.ndarray:
    if report is None:
        return np.zeros(0)
    code = _label_codes()[report.label]
    return np.array(
        [float(code)] + [float(getattr(report, f)) for f in _REPORT_FIELDS]
    )


def _report_from_array(packed: np.ndarray):
    from repro.core.classify import DiurnalReport

    if len(packed) == 0:
        return None
    decode = {code: label for label, code in _label_codes().items()}
    fields = dict(zip(_REPORT_FIELDS, packed[1:]))
    for int_field in ("diurnal_k", "dominant_k"):
        fields[int_field] = int(fields[int_field])
    return DiurnalReport(label=decode[int(packed[0])], **fields)


def _quality_to_array(quality) -> np.ndarray:
    if quality is None:
        return np.zeros(0, dtype=np.int64)
    return np.array(
        [
            quality.n_rounds,
            quality.n_observed,
            quality.n_duplicates,
            quality.n_filled,
            quality.longest_gap,
        ],
        dtype=np.int64,
    )


def _quality_from_array(packed: np.ndarray):
    from repro.core.timeseries import QualityReport

    if len(packed) == 0:
        return None
    return QualityReport(*(int(v) for v in packed))


def _schedule_to_array(schedule: RoundSchedule) -> np.ndarray:
    return np.array(
        [
            schedule.n_rounds,
            schedule.round_s,
            schedule.start_s,
            schedule.restart_interval_s,
        ]
    )


def _schedule_from_array(packed: np.ndarray) -> RoundSchedule:
    n_rounds, round_s, start_s, restart = packed
    return RoundSchedule(
        n_rounds=int(n_rounds),
        round_s=float(round_s),
        start_s=float(start_s),
        restart_interval_s=float(restart),
    )


def save_batch_checkpoint(
    path: str | Path,
    entries: dict,
    schedule: RoundSchedule,
    meta: dict,
) -> Path:
    """Atomically persist a partial batch run (checksummed).

    ``entries`` maps batch index to ``BlockMeasurement`` or
    ``BlockFailure``.  ``meta`` must carry ``seed`` and ``n_blocks`` so
    resume can refuse a checkpoint from a different run.
    """
    from repro.core.pipeline import BlockMeasurement

    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "meta": np.array([int(meta["seed"]), int(meta["n_blocks"])]),
        "schedule": _schedule_to_array(schedule),
        "indices": np.array(sorted(entries), dtype=np.int64),
    }
    for index, entry in entries.items():
        if isinstance(entry, BlockMeasurement):
            prefix = f"m{index}_"
            for name in _MEASUREMENT_ARRAYS:
                arrays[prefix + name] = getattr(entry, name)
            arrays[prefix + "ints"] = np.array(
                [
                    entry.block_id,
                    entry.n_ever_active,
                    int(entry.skipped),
                    int(entry.stationary),
                    entry.trim.start or 0,
                    entry.trim.stop,
                ],
                dtype=np.int64,
            )
            arrays[prefix + "report"] = _report_to_array(entry.report)
            arrays[prefix + "true_report"] = _report_to_array(entry.true_report)
            arrays[prefix + "quality"] = _quality_to_array(entry.quality)
        else:
            prefix = f"f{index}_"
            arrays[prefix + "ints"] = np.array(
                [entry.block_id, entry.index, entry.attempts], dtype=np.int64
            )
            arrays[prefix + "error"] = np.array(
                [entry.error_type, entry.message]
            )
    _save_npz(path, "checkpoint", _CHECKPOINT_VERSION, arrays)
    _obs.saves.inc()
    _obs.entries_saved.inc(len(entries))
    if _obs.enabled:
        _obs.checkpoint_bytes.set(path.stat().st_size)
    return path


def load_batch_checkpoint(path: str | Path, quarantine: bool = True):
    """Load a checkpoint written by :func:`save_batch_checkpoint`.

    Returns ``(entries, schedule, meta)`` with entries reconstructed as
    ``BlockMeasurement`` / ``BlockFailure`` objects, bit-identical to the
    instances that were saved.  Digest, schema version, and array shapes
    are validated before reconstruction; failures raise
    :class:`CorruptCheckpointError` (after quarantining the file) or
    :class:`CheckpointVersionError`, never a bare numpy/KeyError.
    """
    from repro.core.pipeline import BlockFailure, BlockMeasurement

    path = Path(path)
    data = _load_npz(path, "checkpoint", _CHECKPOINT_VERSION, quarantine)
    for name in ("meta", "schedule", "indices"):
        _require(name in data, path, f"missing array {name!r}")
    _require(
        data["meta"].shape == (2,),
        path,
        f"meta has shape {data['meta'].shape}, expected (2,)",
    )
    _require(
        data["schedule"].shape == (4,),
        path,
        f"schedule has shape {data['schedule'].shape}, expected (4,)",
    )
    seed, n_blocks = (int(v) for v in data["meta"])
    schedule = _schedule_from_array(data["schedule"])
    entries: dict = {}
    try:
        for index in data["indices"].tolist():
            m_prefix, f_prefix = f"m{index}_", f"f{index}_"
            if m_prefix + "ints" in data:
                ints = data[m_prefix + "ints"]
                _require(
                    ints.shape == (6,),
                    path,
                    f"{m_prefix}ints has shape {ints.shape}, expected (6,)",
                )
                entries[index] = BlockMeasurement(
                    block_id=int(ints[0]),
                    schedule=schedule,
                    **{
                        name: data[m_prefix + name]
                        for name in _MEASUREMENT_ARRAYS
                    },
                    trim=slice(int(ints[4]), int(ints[5])),
                    n_ever_active=int(ints[1]),
                    skipped=bool(ints[2]),
                    report=_report_from_array(data[m_prefix + "report"]),
                    true_report=_report_from_array(
                        data[m_prefix + "true_report"]
                    ),
                    stationary=bool(ints[3]),
                    quality=_quality_from_array(data[m_prefix + "quality"]),
                )
            else:
                _require(
                    f_prefix + "ints" in data,
                    path,
                    f"index {index} has neither measurement nor failure entry",
                )
                ints = data[f_prefix + "ints"]
                _require(
                    ints.shape == (3,),
                    path,
                    f"{f_prefix}ints has shape {ints.shape}, expected (3,)",
                )
                error_type, message = data[f_prefix + "error"]
                entries[index] = BlockFailure(
                    block_id=int(ints[0]),
                    index=int(ints[1]),
                    error_type=str(error_type),
                    message=str(message),
                    attempts=int(ints[2]),
                )
    except CorruptCheckpointError:
        raise
    except (KeyError, ValueError, IndexError, TypeError) as exc:
        # Digest-valid content that still cannot reconstruct points at a
        # writer bug; name the file and entry instead of leaking internals.
        _obs.corruption.inc()
        raise CorruptCheckpointError(
            path, f"entry reconstruction failed ({type(exc).__name__}: {exc})"
        ) from exc
    _obs.loads.inc()
    _obs.entries_loaded.inc(len(entries))
    return entries, schedule, {"seed": seed, "n_blocks": n_blocks}


def iter_observation_stream(
    path: str | Path,
    series: str = "a_short",
    include_skipped: bool = False,
    interleave: bool = False,
):
    """Replay a saved batch checkpoint as a round-by-round stream.

    Yields ``(block_id, time_s, value)`` tuples suitable for
    :meth:`repro.stream.engine.StreamEngine.replay`, turning any
    checkpoint written by :class:`repro.core.pipeline.BatchRunner` into
    a live-ingestion simulation.  By default blocks are replayed one
    after another; ``interleave=True`` walks the shared round schedule
    instead, emitting every block's round ``r`` before any block's round
    ``r + 1`` — the arrival order a real multi-block prober produces.
    Failures are skipped (they carry no series); skipped-as-sparse
    blocks are omitted unless ``include_skipped``.  A damaged checkpoint
    raises :class:`CorruptCheckpointError` before the first tuple is
    yielded.
    """
    from repro.core.pipeline import BlockMeasurement

    entries, schedule, _ = load_batch_checkpoint(path)
    streams = []
    for index in sorted(entries):
        entry = entries[index]
        if not isinstance(entry, BlockMeasurement):
            continue
        if entry.skipped and not include_skipped:
            continue
        times, values = entry.observation_stream(series)
        streams.append((entry.block_id, times, values))
    if interleave:
        for r in range(schedule.n_rounds):
            for block_id, times, values in streams:
                _obs.replayed.inc()
                yield block_id, float(times[r]), float(values[r])
    else:
        for block_id, times, values in streams:
            for t, v in zip(times, values):
                _obs.replayed.inc()
                yield block_id, float(t), float(v)


def write_csv(path: str | Path, header: list, rows: list) -> Path:
    """Write an analysis table as CSV (one figure/table per file).

    The write is atomic (temp file + fsync + ``os.replace``): a reader —
    or a rerun after a crash — can never observe a half-written table.
    """
    path = Path(path)

    def _write(handle) -> None:
        import io as _io

        text = _io.TextIOWrapper(handle, newline="", write_through=True)
        writer = csv.writer(text)
        writer.writerow(header)
        writer.writerows(rows)
        text.flush()
        text.detach()  # leave the binary handle open for fsync

    _atomic_write(path, "table", _write)
    return path

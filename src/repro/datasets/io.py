"""On-disk persistence for worlds, measurements, tables, and checkpoints."""

from __future__ import annotations

import csv
import os
from pathlib import Path

import numpy as np

from repro.obs.registry import NULL_REGISTRY
from repro.probing.rounds import RoundSchedule
from repro.simulation.fastsim import FastMeasurement
from repro.simulation.internet import InternetWorld

__all__ = [
    "ensure_measurement",
    "iter_observation_stream",
    "load_batch_checkpoint",
    "load_measurement",
    "load_world_arrays",
    "save_batch_checkpoint",
    "save_measurement",
    "save_world_arrays",
    "set_metrics",
    "write_csv",
]


class _Instruments:
    """Pre-bound persistence metrics (null registry by default)."""

    __slots__ = ("enabled", "saves", "loads", "entries_saved",
                 "entries_loaded", "checkpoint_bytes", "replayed")

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.saves = registry.counter("io_checkpoint_saves_total")
        self.loads = registry.counter("io_checkpoint_loads_total")
        self.entries_saved = registry.counter(
            "io_checkpoint_entries_saved_total"
        )
        self.entries_loaded = registry.counter(
            "io_checkpoint_entries_loaded_total"
        )
        self.checkpoint_bytes = registry.gauge("io_checkpoint_bytes")
        self.replayed = registry.counter("io_replayed_observations_total")


_obs = _Instruments(NULL_REGISTRY)


def set_metrics(registry) -> None:
    """Point this module's persistence metrics at ``registry``.

    Pass ``None`` to turn instrumentation back off.  Usually called
    through :func:`repro.obs.install_metrics`.
    """
    global _obs
    _obs = _Instruments(registry if registry is not None else NULL_REGISTRY)


def save_measurement(path: str | Path, measurement: FastMeasurement) -> Path:
    """Save a world measurement as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    schedule = measurement.schedule
    np.savez_compressed(
        path,
        labels=measurement.labels,
        phases=measurement.phases,
        dominant_cycles_per_day=measurement.dominant_cycles_per_day,
        diurnal_amplitude=measurement.diurnal_amplitude,
        mean_availability=measurement.mean_availability,
        schedule=np.array(
            [
                schedule.n_rounds,
                schedule.round_s,
                schedule.start_s,
                schedule.restart_interval_s,
            ]
        ),
    )
    return path


def load_measurement(path: str | Path) -> FastMeasurement:
    """Load a measurement previously stored by :func:`save_measurement`."""
    with np.load(Path(path)) as data:
        n_rounds, round_s, start_s, restart = data["schedule"]
        return FastMeasurement(
            labels=data["labels"],
            phases=data["phases"],
            dominant_cycles_per_day=data["dominant_cycles_per_day"],
            diurnal_amplitude=data["diurnal_amplitude"],
            mean_availability=data["mean_availability"],
            schedule=RoundSchedule(
                n_rounds=int(n_rounds),
                round_s=float(round_s),
                start_s=float(start_s),
                restart_interval_s=float(restart),
            ),
        )


# World fields that round-trip as plain numeric arrays.
_WORLD_NUMERIC = (
    "block_id",
    "country_idx",
    "lat",
    "lon",
    "asn",
    "alloc_year",
    "is_diurnal",
    "n_active",
    "a_high",
    "a_low",
    "onset_frac",
    "uptime_frac",
    "noise_sigma",
    "lease_cpd",
    "lease_amp",
    "lease_phase",
)


def save_world_arrays(path: str | Path, world: InternetWorld) -> Path:
    """Save a world's per-block arrays (not its registry views).

    The generator is deterministic, so ``(n_blocks, seed)`` plus these
    arrays fully describe the dataset; registry views are rebuilt on load
    via :func:`repro.simulation.internet.generate_world`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: getattr(world, name) for name in _WORLD_NUMERIC}
    arrays["config"] = np.array([world.config.n_blocks, world.config.seed])
    np.savez_compressed(path, **arrays)
    return path


def load_world_arrays(path: str | Path) -> dict:
    """Load world arrays saved by :func:`save_world_arrays`.

    Returns a dict of arrays plus ``n_blocks``/``seed`` under ``config``.
    """
    with np.load(Path(path)) as data:
        return {name: data[name] for name in data.files}


def ensure_measurement(
    dataset_name: str,
    cache_dir: str | Path,
    n_blocks: int | None = None,
) -> FastMeasurement:
    """Load a named dataset's measurement from cache, or compute and save.

    The expensive step of every global analysis is measuring a world;
    caching it under ``cache_dir/<name>-<blocks>.npz`` lets analyses and
    notebooks share one run, the way the paper's derived datasets are
    shared.  Only "adaptive" datasets (A12W and friends) are world-based.
    """
    from repro.datasets.registry import dataset
    from repro.simulation.fastsim import measure_world
    from repro.simulation.internet import generate_world

    spec = dataset(dataset_name)
    config = spec.world_config(n_blocks)
    path = Path(cache_dir) / f"{spec.name}-{config.n_blocks}.npz"
    if path.exists():
        return load_measurement(path)
    world = generate_world(config)
    measurement = measure_world(world, spec.schedule())
    save_measurement(path, measurement)
    return measurement


# --- batch checkpoints -----------------------------------------------------
#
# A checkpoint is one .npz archive holding every completed entry of a
# BatchRunner run, keyed by batch index: measurement entries under
# "m{i}_*" keys, failure entries under "f{i}_*".  Writes are atomic
# (tmp file + rename) so a run killed mid-checkpoint leaves the previous
# complete checkpoint intact, never a truncated archive.

_CHECKPOINT_VERSION = 1

# DiurnalReport scalar fields serialized as one float vector, in order.
_REPORT_FIELDS = (
    "diurnal_k",
    "diurnal_amplitude",
    "dominant_k",
    "dominant_cycles_per_day",
    "strongest_other",
    "strongest_harmonic",
    "phase",
)

_MEASUREMENT_ARRAYS = (
    "positives",
    "totals",
    "states",
    "a_short",
    "a_long",
    "a_operational",
    "true_availability",
)


def _label_codes():
    from repro.core.classify import DiurnalBatch

    return DiurnalBatch.LABEL_CODES


def _report_to_array(report) -> np.ndarray:
    if report is None:
        return np.zeros(0)
    code = _label_codes()[report.label]
    return np.array(
        [float(code)] + [float(getattr(report, f)) for f in _REPORT_FIELDS]
    )


def _report_from_array(packed: np.ndarray):
    from repro.core.classify import DiurnalReport

    if len(packed) == 0:
        return None
    decode = {code: label for label, code in _label_codes().items()}
    fields = dict(zip(_REPORT_FIELDS, packed[1:]))
    for int_field in ("diurnal_k", "dominant_k"):
        fields[int_field] = int(fields[int_field])
    return DiurnalReport(label=decode[int(packed[0])], **fields)


def _quality_to_array(quality) -> np.ndarray:
    if quality is None:
        return np.zeros(0, dtype=np.int64)
    return np.array(
        [
            quality.n_rounds,
            quality.n_observed,
            quality.n_duplicates,
            quality.n_filled,
            quality.longest_gap,
        ],
        dtype=np.int64,
    )


def _quality_from_array(packed: np.ndarray):
    from repro.core.timeseries import QualityReport

    if len(packed) == 0:
        return None
    return QualityReport(*(int(v) for v in packed))


def _schedule_to_array(schedule: RoundSchedule) -> np.ndarray:
    return np.array(
        [
            schedule.n_rounds,
            schedule.round_s,
            schedule.start_s,
            schedule.restart_interval_s,
        ]
    )


def _schedule_from_array(packed: np.ndarray) -> RoundSchedule:
    n_rounds, round_s, start_s, restart = packed
    return RoundSchedule(
        n_rounds=int(n_rounds),
        round_s=float(round_s),
        start_s=float(start_s),
        restart_interval_s=float(restart),
    )


def save_batch_checkpoint(
    path: str | Path,
    entries: dict,
    schedule: RoundSchedule,
    meta: dict,
) -> Path:
    """Atomically persist a partial batch run.

    ``entries`` maps batch index to ``BlockMeasurement`` or
    ``BlockFailure``.  ``meta`` must carry ``seed`` and ``n_blocks`` so
    resume can refuse a checkpoint from a different run.
    """
    from repro.core.pipeline import BlockMeasurement

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_CHECKPOINT_VERSION]),
        "meta": np.array([int(meta["seed"]), int(meta["n_blocks"])]),
        "schedule": _schedule_to_array(schedule),
        "indices": np.array(sorted(entries), dtype=np.int64),
    }
    for index, entry in entries.items():
        if isinstance(entry, BlockMeasurement):
            prefix = f"m{index}_"
            for name in _MEASUREMENT_ARRAYS:
                arrays[prefix + name] = getattr(entry, name)
            arrays[prefix + "ints"] = np.array(
                [
                    entry.block_id,
                    entry.n_ever_active,
                    int(entry.skipped),
                    int(entry.stationary),
                    entry.trim.start or 0,
                    entry.trim.stop,
                ],
                dtype=np.int64,
            )
            arrays[prefix + "report"] = _report_to_array(entry.report)
            arrays[prefix + "true_report"] = _report_to_array(entry.true_report)
            arrays[prefix + "quality"] = _quality_to_array(entry.quality)
        else:
            prefix = f"f{index}_"
            arrays[prefix + "ints"] = np.array(
                [entry.block_id, entry.index, entry.attempts], dtype=np.int64
            )
            arrays[prefix + "error"] = np.array(
                [entry.error_type, entry.message]
            )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    os.replace(tmp, path)
    _obs.saves.inc()
    _obs.entries_saved.inc(len(entries))
    if _obs.enabled:
        _obs.checkpoint_bytes.set(path.stat().st_size)
    return path


def load_batch_checkpoint(path: str | Path):
    """Load a checkpoint written by :func:`save_batch_checkpoint`.

    Returns ``(entries, schedule, meta)`` with entries reconstructed as
    ``BlockMeasurement`` / ``BlockFailure`` objects, bit-identical to the
    instances that were saved.
    """
    from repro.core.pipeline import BlockFailure, BlockMeasurement

    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {path} has version {version}, "
                f"expected {_CHECKPOINT_VERSION}"
            )
        seed, n_blocks = (int(v) for v in data["meta"])
        schedule = _schedule_from_array(data["schedule"])
        entries: dict = {}
        for index in data["indices"].tolist():
            m_prefix, f_prefix = f"m{index}_", f"f{index}_"
            if m_prefix + "ints" in data.files:
                ints = data[m_prefix + "ints"]
                entries[index] = BlockMeasurement(
                    block_id=int(ints[0]),
                    schedule=schedule,
                    **{
                        name: data[m_prefix + name]
                        for name in _MEASUREMENT_ARRAYS
                    },
                    trim=slice(int(ints[4]), int(ints[5])),
                    n_ever_active=int(ints[1]),
                    skipped=bool(ints[2]),
                    report=_report_from_array(data[m_prefix + "report"]),
                    true_report=_report_from_array(
                        data[m_prefix + "true_report"]
                    ),
                    stationary=bool(ints[3]),
                    quality=_quality_from_array(data[m_prefix + "quality"]),
                )
            else:
                ints = data[f_prefix + "ints"]
                error_type, message = data[f_prefix + "error"]
                entries[index] = BlockFailure(
                    block_id=int(ints[0]),
                    index=int(ints[1]),
                    error_type=str(error_type),
                    message=str(message),
                    attempts=int(ints[2]),
                )
    _obs.loads.inc()
    _obs.entries_loaded.inc(len(entries))
    return entries, schedule, {"seed": seed, "n_blocks": n_blocks}


def iter_observation_stream(
    path: str | Path,
    series: str = "a_short",
    include_skipped: bool = False,
    interleave: bool = False,
):
    """Replay a saved batch checkpoint as a round-by-round stream.

    Yields ``(block_id, time_s, value)`` tuples suitable for
    :meth:`repro.stream.engine.StreamEngine.replay`, turning any
    checkpoint written by :class:`repro.core.pipeline.BatchRunner` into
    a live-ingestion simulation.  By default blocks are replayed one
    after another; ``interleave=True`` walks the shared round schedule
    instead, emitting every block's round ``r`` before any block's round
    ``r + 1`` — the arrival order a real multi-block prober produces.
    Failures are skipped (they carry no series); skipped-as-sparse
    blocks are omitted unless ``include_skipped``.
    """
    from repro.core.pipeline import BlockMeasurement

    entries, schedule, _ = load_batch_checkpoint(path)
    streams = []
    for index in sorted(entries):
        entry = entries[index]
        if not isinstance(entry, BlockMeasurement):
            continue
        if entry.skipped and not include_skipped:
            continue
        times, values = entry.observation_stream(series)
        streams.append((entry.block_id, times, values))
    if interleave:
        for r in range(schedule.n_rounds):
            for block_id, times, values in streams:
                _obs.replayed.inc()
                yield block_id, float(times[r]), float(values[r])
    else:
        for block_id, times, values in streams:
            for t, v in zip(times, values):
                _obs.replayed.inc()
                yield block_id, float(t), float(v)


def write_csv(path: str | Path, header: list, rows: list) -> Path:
    """Write an analysis table as CSV (one figure/table per file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path

"""On-disk persistence for worlds, measurements, and tables."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.probing.rounds import RoundSchedule
from repro.simulation.fastsim import FastMeasurement
from repro.simulation.internet import InternetWorld

__all__ = [
    "ensure_measurement",
    "load_measurement",
    "load_world_arrays",
    "save_measurement",
    "save_world_arrays",
    "write_csv",
]


def save_measurement(path: str | Path, measurement: FastMeasurement) -> Path:
    """Save a world measurement as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    schedule = measurement.schedule
    np.savez_compressed(
        path,
        labels=measurement.labels,
        phases=measurement.phases,
        dominant_cycles_per_day=measurement.dominant_cycles_per_day,
        diurnal_amplitude=measurement.diurnal_amplitude,
        mean_availability=measurement.mean_availability,
        schedule=np.array(
            [
                schedule.n_rounds,
                schedule.round_s,
                schedule.start_s,
                schedule.restart_interval_s,
            ]
        ),
    )
    return path


def load_measurement(path: str | Path) -> FastMeasurement:
    """Load a measurement previously stored by :func:`save_measurement`."""
    with np.load(Path(path)) as data:
        n_rounds, round_s, start_s, restart = data["schedule"]
        return FastMeasurement(
            labels=data["labels"],
            phases=data["phases"],
            dominant_cycles_per_day=data["dominant_cycles_per_day"],
            diurnal_amplitude=data["diurnal_amplitude"],
            mean_availability=data["mean_availability"],
            schedule=RoundSchedule(
                n_rounds=int(n_rounds),
                round_s=float(round_s),
                start_s=float(start_s),
                restart_interval_s=float(restart),
            ),
        )


# World fields that round-trip as plain numeric arrays.
_WORLD_NUMERIC = (
    "block_id",
    "country_idx",
    "lat",
    "lon",
    "asn",
    "alloc_year",
    "is_diurnal",
    "n_active",
    "a_high",
    "a_low",
    "onset_frac",
    "uptime_frac",
    "noise_sigma",
    "lease_cpd",
    "lease_amp",
    "lease_phase",
)


def save_world_arrays(path: str | Path, world: InternetWorld) -> Path:
    """Save a world's per-block arrays (not its registry views).

    The generator is deterministic, so ``(n_blocks, seed)`` plus these
    arrays fully describe the dataset; registry views are rebuilt on load
    via :func:`repro.simulation.internet.generate_world`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: getattr(world, name) for name in _WORLD_NUMERIC}
    arrays["config"] = np.array([world.config.n_blocks, world.config.seed])
    np.savez_compressed(path, **arrays)
    return path


def load_world_arrays(path: str | Path) -> dict:
    """Load world arrays saved by :func:`save_world_arrays`.

    Returns a dict of arrays plus ``n_blocks``/``seed`` under ``config``.
    """
    with np.load(Path(path)) as data:
        return {name: data[name] for name in data.files}


def ensure_measurement(
    dataset_name: str,
    cache_dir: str | Path,
    n_blocks: int | None = None,
) -> FastMeasurement:
    """Load a named dataset's measurement from cache, or compute and save.

    The expensive step of every global analysis is measuring a world;
    caching it under ``cache_dir/<name>-<blocks>.npz`` lets analyses and
    notebooks share one run, the way the paper's derived datasets are
    shared.  Only "adaptive" datasets (A12W and friends) are world-based.
    """
    from repro.datasets.registry import dataset
    from repro.simulation.fastsim import measure_world
    from repro.simulation.internet import generate_world

    spec = dataset(dataset_name)
    config = spec.world_config(n_blocks)
    path = Path(cache_dir) / f"{spec.name}-{config.n_blocks}.npz"
    if path.exists():
        return load_measurement(path)
    world = generate_world(config)
    measurement = measure_world(world, spec.schedule())
    save_measurement(path, measurement)
    return measurement


def write_csv(path: str | Path, header: list, rows: list) -> Path:
    """Write an analysis table as CSV (one figure/table per file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path

"""Composition of fault injectors into one deterministic scenario.

A :class:`FaultPlan` turns a :class:`~repro.faults.config.FaultConfig`
into the ordered list of active injectors and owns their randomness.
Every hook call derives its generator from ``(config.seed, *entropy,
injector index)``, so

* calling the same hook twice on the same plan gives identical faults
  (needed for bit-identical checkpoint resume);
* per-block plans from :meth:`FaultPlan.for_block` have independent
  substreams, keyed by block index;
* toggling one injector never shifts the draws of the others.
"""

from __future__ import annotations

import numpy as np

from repro.faults.config import FaultConfig
from repro.faults.injectors import (
    ClockSkewInjector,
    FaultInjector,
    GapInjector,
    ObservationStream,
    ProbeLossInjector,
    ProberCrashInjector,
    RoundDropInjector,
    RoundDuplicateInjector,
)
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.registry import NULL_REGISTRY
from repro.probing.rounds import RoundSchedule

__all__ = ["FaultPlan"]

# Stable hook offsets so oracle/stream/crash draws never collide even if
# one injector ever implements several hooks.
_ORACLE_STREAM = 0
_STREAM_STREAM = 1
_CRASH_STREAM = 2


def _build_injectors(config: FaultConfig) -> list[FaultInjector]:
    injectors: list[FaultInjector] = []
    if config.probe_loss_rate > 0:
        injectors.append(ProbeLossInjector(config.probe_loss_rate))
    if config.round_drop_rate > 0:
        injectors.append(RoundDropInjector(config.round_drop_rate))
    if config.round_duplicate_rate > 0:
        injectors.append(RoundDuplicateInjector(config.round_duplicate_rate))
    if config.gaps_per_day > 0:
        injectors.append(
            GapInjector(config.gaps_per_day, config.mean_gap_rounds)
        )
    if config.clock_jitter_s > 0 or config.clock_skew_ppm != 0:
        injectors.append(
            ClockSkewInjector(config.clock_jitter_s, config.clock_skew_ppm)
        )
    if config.crashes_per_day > 0:
        injectors.append(ProberCrashInjector(config.crashes_per_day))
    return injectors


class FaultPlan:
    """One realized degradation scenario over one measurement.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`; null by default)
    receives injected-event counters — observations removed/added per
    injector, crash restarts, lost probe responses — so fault ablations
    can assert that every injected fault was observed downstream.
    ``events`` (a :class:`repro.obs.EventLogger`; null by default) gets
    a debug record per injection, correlated with the block's trace.
    Neither consumes randomness: toggling observability cannot change
    the faults a seed produces.
    """

    def __init__(
        self,
        config: FaultConfig,
        entropy: tuple[int, ...] = (),
        metrics=None,
        events=None,
    ) -> None:
        self.config = config
        self.entropy = tuple(int(e) for e in entropy)
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.events = NULL_EVENT_LOG if events is None else events
        self.injectors = _build_injectors(config)
        for injector in self.injectors:
            injector.metrics = self.metrics

    @property
    def is_clean(self) -> bool:
        return len(self.injectors) == 0

    def for_block(self, index: int) -> "FaultPlan":
        """Plan with an independent random substream for one block."""
        return FaultPlan(
            self.config,
            entropy=(*self.entropy, int(index)),
            metrics=self.metrics,
            events=self.events,
        )

    def _rng(self, injector_idx: int, stream: int) -> np.random.Generator:
        return np.random.default_rng(
            (self.config.seed, *self.entropy, injector_idx, stream)
        )

    def wrap_oracle(self, oracle):
        """Interpose every probe-path injector on an oracle."""
        for i, injector in enumerate(self.injectors):
            oracle = injector.wrap_oracle(oracle, self._rng(i, _ORACLE_STREAM))
        return oracle

    def crash_rounds(self, schedule: RoundSchedule) -> np.ndarray:
        """Union of all unscheduled restart rounds."""
        rounds: list[np.ndarray] = []
        for i, injector in enumerate(self.injectors):
            injected = injector.crash_rounds(
                schedule, self._rng(i, _CRASH_STREAM)
            )
            if len(injected):
                self.metrics.counter(
                    "faults_crash_restarts_total",
                    injector=type(injector).__name__,
                ).inc(len(injected))
                self.events.debug(
                    "fault.crash_rounds",
                    injector=type(injector).__name__,
                    n_restarts=int(len(injected)),
                    entropy=list(self.entropy),
                )
            rounds.append(injected)
        if not rounds:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(rounds))

    def degrade_stream(
        self, times: np.ndarray, values: np.ndarray, round_s: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the observation stream through every stream injector.

        Returns the degraded stream sorted by (possibly corrupted)
        timestamp, ready for ``observations_to_grid``.
        """
        stream = ObservationStream(
            np.asarray(times, dtype=np.float64).copy(),
            np.asarray(values, dtype=np.float64).copy(),
        )
        for i, injector in enumerate(self.injectors):
            n_before = stream.n_observations
            stream = injector.corrupt_stream(
                stream, round_s, self._rng(i, _STREAM_STREAM)
            )
            delta = stream.n_observations - n_before
            if delta < 0:
                self.metrics.counter(
                    "faults_observations_removed_total",
                    injector=type(injector).__name__,
                ).inc(-delta)
            elif delta > 0:
                self.metrics.counter(
                    "faults_observations_added_total",
                    injector=type(injector).__name__,
                ).inc(delta)
            if delta:
                self.events.debug(
                    "fault.stream_degraded",
                    injector=type(injector).__name__,
                    delta_observations=int(delta),
                    entropy=list(self.entropy),
                )
        stream = stream.sorted()
        return stream.times, stream.values

    def describe(self) -> str:
        if self.is_clean:
            return "clean (no faults)"
        return " + ".join(injector.describe() for injector in self.injectors)

"""On-disk corruption primitives shared by durability tests and chaos runs.

The durable loaders promise that *no* damaged file is ever silently
loaded — truncation, bit rot, or an empty file must surface as a typed
error (and quarantine), never as numpy garbage.  This module is the
single source of the damage shapes those promises are tested against:
each corruptor mutates a file in place, and :data:`CORRUPTION_MATRIX`
names the standard set so every loader test and the chaos harness
exercise the identical matrix.

Corruptors are deterministic (no randomness): the same file always ends
up with the same damage, keeping chaos runs reproducible.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "CORRUPTION_MATRIX",
    "corrupt_file",
    "flip_bit",
    "overwrite_range",
    "truncate_fraction",
    "truncate_tail",
    "zero_length",
]


def truncate_tail(path: str | Path, n_bytes: int = 1) -> Path:
    """Drop the last ``n_bytes`` bytes — a write that never finished."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(size - n_bytes, 0))
    return path


def truncate_fraction(path: str | Path, keep: float = 0.5) -> Path:
    """Keep only the leading ``keep`` fraction of the file."""
    if not 0.0 <= keep <= 1.0:
        raise ValueError("keep must be in [0, 1]")
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(int(size * keep))
    return path


def flip_bit(path: str | Path, offset: int, bit: int = 0) -> Path:
    """Flip one bit at byte ``offset`` (negative offsets count from EOF)."""
    if not 0 <= bit <= 7:
        raise ValueError("bit must be in [0, 7]")
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"{path} is empty; nothing to flip")
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << bit)]))
    return path


def overwrite_range(
    path: str | Path, offset: int, data: bytes
) -> Path:
    """Replace bytes at ``offset`` with ``data`` (no size change)."""
    path = Path(path)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(data)
    return path


def zero_length(path: str | Path) -> Path:
    """Truncate to zero bytes — a crash between create and first write."""
    path = Path(path)
    with open(path, "r+b") as handle:
        handle.truncate(0)
    return path


# The standard damage matrix: name -> corruptor(path).  Offsets are
# chosen to hit distinct regions: the container header, the middle of
# the payload, and the tail.
CORRUPTION_MATRIX = {
    "zero-length": zero_length,
    "truncated-half": lambda p: truncate_fraction(p, keep=0.5),
    "truncated-tail": lambda p: truncate_tail(p, n_bytes=7),
    "bitflip-header": lambda p: flip_bit(p, offset=2),
    "bitflip-middle": lambda p: flip_bit(p, offset=Path(p).stat().st_size // 2),
    "bitflip-tail": lambda p: flip_bit(p, offset=-3),
    "garbage-header": lambda p: overwrite_range(p, 0, b"\xde\xad\xbe\xef"),
}


def corrupt_file(path: str | Path, kind: str) -> Path:
    """Apply one named corruption from :data:`CORRUPTION_MATRIX`."""
    try:
        corruptor = CORRUPTION_MATRIX[kind]
    except KeyError:
        raise KeyError(
            f"unknown corruption {kind!r}; expected one of "
            f"{sorted(CORRUPTION_MATRIX)}"
        ) from None
    return corruptor(Path(path))

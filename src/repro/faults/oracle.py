"""A lossy proxy over :class:`~repro.net.blocks.ResponseOracle`.

Probe loss is a *measurement* fault, not a behaviour change: the block's
addresses still answer, but the answer never reaches the prober.  The
proxy therefore flips positive probe outcomes to negative with a fixed
probability while leaving the ground-truth availability series — which is
defined over the block's real behaviour — untouched.
"""

from __future__ import annotations

import numpy as np

from repro.net.blocks import ResponseOracle

__all__ = ["LossyOracle"]


class LossyOracle:
    """Drops each positive probe response with probability ``loss_rate``.

    Implements the same read-only interface probers use on
    :class:`ResponseOracle`; ground-truth accessors delegate to the
    wrapped oracle unchanged.
    """

    def __init__(
        self,
        oracle: ResponseOracle,
        loss_rate: float,
        rng: np.random.Generator,
        counter=None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self._oracle = oracle
        self.loss_rate = loss_rate
        self._rng = rng
        # Optional injected-event counter (anything with ``inc``); the
        # RNG is consumed identically whether or not losses are counted.
        self._counter = counter
        self.n_lost = 0

    @property
    def block_id(self) -> int:
        return self._oracle.block_id

    @property
    def times(self) -> np.ndarray:
        return self._oracle.times

    @property
    def ever_active(self) -> np.ndarray:
        return self._oracle.ever_active

    @property
    def n_rounds(self) -> int:
        return self._oracle.n_rounds

    @property
    def n_ever_active(self) -> int:
        return self._oracle.n_ever_active

    def probe(self, host: int, round_idx: int) -> bool:
        response = self._oracle.probe(host, round_idx)
        if response and self._rng.random() < self.loss_rate:
            self.n_lost += 1
            if self._counter is not None:
                self._counter.inc()
            return False
        return response

    def probe_many(self, hosts: np.ndarray, round_idx: int) -> np.ndarray:
        responses = np.array(self._oracle.probe_many(hosts, round_idx))
        lost = self._rng.random(len(responses)) < self.loss_rate
        n_lost = int((responses & lost).sum())
        if n_lost:
            self.n_lost += n_lost
            if self._counter is not None:
                self._counter.inc(n_lost)
        return responses & ~lost

    def true_availability(self) -> np.ndarray:
        """Ground truth is unaffected: the addresses did respond."""
        return self._oracle.true_availability()

    def mean_availability(self) -> float:
        return self._oracle.mean_availability()

"""Shared configuration for the fault-injection subsystem.

One :class:`FaultConfig` describes a whole degradation scenario: every
injector reads its knobs from here, so a benchmark can run "clean versus
degraded" by swapping a single object.  The default instance is fully
clean (every rate zero), and :attr:`FaultConfig.is_clean` lets callers
skip the fault path entirely in that case.

The magnitudes are chosen to bracket what the paper reports for real
Trinocular data: ~5% of rounds missing or duplicated (section 2.2),
prober restarts every 5.5 hours (the Figure 10 artifact), and multi-round
holes from outages at the prober's own site.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultConfig"]


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for one degradation scenario.

    Attributes:
        probe_loss_rate: probability that an individual probe's positive
            response is lost in transit (the prober sees a negative).
        round_drop_rate: probability that a round's estimate never reaches
            the analysis pipeline (a missing observation).
        round_duplicate_rate: probability that a round's estimate is
            delivered twice, the second copy slightly late.
        gaps_per_day: expected number of multi-round measurement gaps
            starting per day (collector outages, maintenance windows).
        mean_gap_rounds: mean length of each such gap, in rounds
            (geometrically distributed, minimum 2 rounds).
        clock_jitter_s: standard deviation of Gaussian noise added to each
            observation timestamp.
        clock_skew_ppm: linear clock drift of the observation timestamps,
            in parts per million of elapsed time.
        crashes_per_day: expected number of *unscheduled* prober crashes
            per day; each behaves like a scheduled restart (walk position
            and belief lost) but at a random round.
        seed: base seed for every injector's random substream.
    """

    probe_loss_rate: float = 0.0
    round_drop_rate: float = 0.0
    round_duplicate_rate: float = 0.0
    gaps_per_day: float = 0.0
    mean_gap_rounds: float = 6.0
    clock_jitter_s: float = 0.0
    clock_skew_ppm: float = 0.0
    crashes_per_day: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("probe_loss_rate", "round_drop_rate", "round_duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("gaps_per_day", "clock_jitter_s", "crashes_per_day"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.mean_gap_rounds < 1:
            raise ValueError("mean_gap_rounds must be at least 1")

    @property
    def is_clean(self) -> bool:
        """True when this configuration injects no faults at all."""
        return (
            self.probe_loss_rate == 0.0
            and self.round_drop_rate == 0.0
            and self.round_duplicate_rate == 0.0
            and self.gaps_per_day == 0.0
            and self.clock_jitter_s == 0.0
            and self.clock_skew_ppm == 0.0
            and self.crashes_per_day == 0.0
        )

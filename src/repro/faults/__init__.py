"""Fault injection: degraded measurement streams, on purpose.

The paper's setting is degraded by nature — ~5% of rounds arrive missing
or duplicated, probers restart every 5.5 hours, and outages punch
multi-round holes in the stream.  This package reproduces those faults as
composable, seeded injectors so any benchmark can run "clean versus
degraded" with one config object:

``config``
    :class:`FaultConfig`, the shared knob set for a scenario.
``injectors``
    One small class per fault: probe loss, dropped and duplicated rounds,
    multi-round gaps, clock skew/jitter, prober crashes.
``oracle``
    :class:`LossyOracle`, the probe-path proxy used by probe loss.
``plan``
    :class:`FaultPlan`, which composes the active injectors and owns
    their deterministic random substreams.
``crash``
    Named crash points: :func:`crashpoint` hooks in the persistence and
    batch layers, armed by chaos tests to kill a run mid-write,
    mid-append, mid-block, or mid-worker (:class:`InjectedCrash`).
``corruption``
    Deterministic on-disk damage (truncation, bit flips, zeroing) and
    the shared :data:`CORRUPTION_MATRIX` the durable loaders are tested
    against.
"""

from repro.faults.config import FaultConfig
from repro.faults.corruption import (
    CORRUPTION_MATRIX,
    corrupt_file,
    flip_bit,
    overwrite_range,
    truncate_fraction,
    truncate_tail,
    zero_length,
)
from repro.faults.crash import (
    InjectedCrash,
    any_armed,
    arm,
    armed,
    crashpoint,
    disarm,
    fired,
)
from repro.faults.injectors import (
    ClockSkewInjector,
    FaultInjector,
    GapInjector,
    ObservationStream,
    ProbeLossInjector,
    ProberCrashInjector,
    RoundDropInjector,
    RoundDuplicateInjector,
)
from repro.faults.oracle import LossyOracle
from repro.faults.plan import FaultPlan

__all__ = [
    "CORRUPTION_MATRIX",
    "ClockSkewInjector",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "GapInjector",
    "InjectedCrash",
    "LossyOracle",
    "ObservationStream",
    "ProbeLossInjector",
    "ProberCrashInjector",
    "RoundDropInjector",
    "RoundDuplicateInjector",
    "any_armed",
    "arm",
    "armed",
    "corrupt_file",
    "crashpoint",
    "disarm",
    "fired",
    "flip_bit",
    "overwrite_range",
    "truncate_fraction",
    "truncate_tail",
    "zero_length",
]

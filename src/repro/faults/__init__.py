"""Fault injection: degraded measurement streams, on purpose.

The paper's setting is degraded by nature — ~5% of rounds arrive missing
or duplicated, probers restart every 5.5 hours, and outages punch
multi-round holes in the stream.  This package reproduces those faults as
composable, seeded injectors so any benchmark can run "clean versus
degraded" with one config object:

``config``
    :class:`FaultConfig`, the shared knob set for a scenario.
``injectors``
    One small class per fault: probe loss, dropped and duplicated rounds,
    multi-round gaps, clock skew/jitter, prober crashes.
``oracle``
    :class:`LossyOracle`, the probe-path proxy used by probe loss.
``plan``
    :class:`FaultPlan`, which composes the active injectors and owns
    their deterministic random substreams.
"""

from repro.faults.config import FaultConfig
from repro.faults.injectors import (
    ClockSkewInjector,
    FaultInjector,
    GapInjector,
    ObservationStream,
    ProbeLossInjector,
    ProberCrashInjector,
    RoundDropInjector,
    RoundDuplicateInjector,
)
from repro.faults.oracle import LossyOracle
from repro.faults.plan import FaultPlan

__all__ = [
    "ClockSkewInjector",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "GapInjector",
    "LossyOracle",
    "ObservationStream",
    "ProbeLossInjector",
    "ProberCrashInjector",
    "RoundDropInjector",
    "RoundDuplicateInjector",
]

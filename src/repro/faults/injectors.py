"""Composable fault injectors.

Each injector is a small class with up to three hooks, all no-ops by
default:

* :meth:`FaultInjector.wrap_oracle` — interpose on the probe path
  (packet loss);
* :meth:`FaultInjector.corrupt_stream` — rewrite the observation stream
  the analysis pipeline receives (drops, duplicates, gaps, clock errors);
* :meth:`FaultInjector.crash_rounds` — add unscheduled prober restarts.

Injectors never share random state: the :class:`~repro.faults.plan.FaultPlan`
hands each hook its own seeded generator, so scenarios compose
deterministically and each fault can be toggled without perturbing the
others' draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.oracle import LossyOracle
from repro.obs.registry import NULL_REGISTRY
from repro.probing.rounds import RoundSchedule

__all__ = [
    "ClockSkewInjector",
    "FaultInjector",
    "GapInjector",
    "ObservationStream",
    "ProbeLossInjector",
    "ProberCrashInjector",
    "RoundDropInjector",
    "RoundDuplicateInjector",
]

_DAY_SECONDS = 86400.0


@dataclass
class ObservationStream:
    """A raw (possibly degraded) observation stream: timestamped values.

    This is the unaligned form that ``observations_to_grid`` cleans back
    onto the round grid — the paper's section 2.2 input.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.times.shape != self.values.shape:
            raise ValueError(
                f"times {self.times.shape} and values {self.values.shape} "
                "must have the same shape"
            )

    @property
    def n_observations(self) -> int:
        return len(self.times)

    def sorted(self) -> "ObservationStream":
        """Time-ordered copy (stable, so duplicate order is preserved)."""
        order = np.argsort(self.times, kind="stable")
        return ObservationStream(self.times[order], self.values[order])


class FaultInjector:
    """Base injector: all hooks are identity transforms.

    ``metrics`` is the injected-event registry; the owning
    :class:`~repro.faults.plan.FaultPlan` replaces the null default so
    injectors that generate faults outside the observation stream (probe
    loss inside the oracle) can still count them.
    """

    metrics = NULL_REGISTRY

    def wrap_oracle(self, oracle, rng: np.random.Generator):
        return oracle

    def corrupt_stream(
        self,
        stream: ObservationStream,
        round_s: float,
        rng: np.random.Generator,
    ) -> ObservationStream:
        return stream

    def crash_rounds(
        self, schedule: RoundSchedule, rng: np.random.Generator
    ) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)

    def describe(self) -> str:
        return type(self).__name__


class ProbeLossInjector(FaultInjector):
    """Individual probe responses lost in transit."""

    def __init__(self, loss_rate: float) -> None:
        self.loss_rate = loss_rate

    def wrap_oracle(self, oracle, rng: np.random.Generator):
        return LossyOracle(
            oracle,
            self.loss_rate,
            rng,
            counter=self.metrics.counter(
                "faults_probe_losses_total", injector=type(self).__name__
            ),
        )

    def describe(self) -> str:
        return f"ProbeLoss({self.loss_rate:.1%})"


class RoundDropInjector(FaultInjector):
    """Independent per-round observation loss (missing estimates)."""

    def __init__(self, drop_rate: float) -> None:
        self.drop_rate = drop_rate

    def corrupt_stream(
        self,
        stream: ObservationStream,
        round_s: float,
        rng: np.random.Generator,
    ) -> ObservationStream:
        keep = rng.random(stream.n_observations) >= self.drop_rate
        return ObservationStream(stream.times[keep], stream.values[keep])

    def describe(self) -> str:
        return f"RoundDrop({self.drop_rate:.1%})"


class RoundDuplicateInjector(FaultInjector):
    """Observations delivered twice, the second copy slightly late.

    The duplicate lands a quarter-round after the original, so gridding
    snaps both to the same round and "most recent wins" resolves them —
    the paper's duplicate rule.
    """

    def __init__(self, duplicate_rate: float) -> None:
        self.duplicate_rate = duplicate_rate

    def corrupt_stream(
        self,
        stream: ObservationStream,
        round_s: float,
        rng: np.random.Generator,
    ) -> ObservationStream:
        dup = rng.random(stream.n_observations) < self.duplicate_rate
        if not dup.any():
            return stream
        times = np.concatenate([stream.times, stream.times[dup] + 0.25 * round_s])
        values = np.concatenate([stream.values, stream.values[dup]])
        return ObservationStream(times, values)

    def describe(self) -> str:
        return f"RoundDuplicate({self.duplicate_rate:.1%})"


class GapInjector(FaultInjector):
    """Multi-round measurement gaps (collector outages).

    Gap starts are a Bernoulli process per round; each gap's length is
    geometric with the configured mean, at least 2 rounds so gaps are
    distinguishable from single drops.
    """

    def __init__(self, gaps_per_day: float, mean_gap_rounds: float) -> None:
        self.gaps_per_day = gaps_per_day
        self.mean_gap_rounds = mean_gap_rounds

    def corrupt_stream(
        self,
        stream: ObservationStream,
        round_s: float,
        rng: np.random.Generator,
    ) -> ObservationStream:
        n = stream.n_observations
        if n == 0:
            return stream
        p_start = min(self.gaps_per_day * round_s / _DAY_SECONDS, 1.0)
        starts = np.flatnonzero(rng.random(n) < p_start)
        if len(starts) == 0:
            return stream
        keep = np.ones(n, dtype=bool)
        p_continue = min(1.0 / max(self.mean_gap_rounds, 1.0), 1.0)
        for start in starts:
            length = max(2, int(rng.geometric(p_continue)))
            keep[start : start + length] = False
        return ObservationStream(stream.times[keep], stream.values[keep])

    def describe(self) -> str:
        return (
            f"Gap({self.gaps_per_day}/day, mean {self.mean_gap_rounds} rounds)"
        )


class ClockSkewInjector(FaultInjector):
    """Timestamp corruption: linear drift plus Gaussian jitter.

    Skew accumulates from the first observation (a prober whose clock
    drifts over the window); jitter is independent per observation and can
    reorder neighbours — downstream consumers must sort before gridding.
    """

    def __init__(self, jitter_s: float, skew_ppm: float) -> None:
        self.jitter_s = jitter_s
        self.skew_ppm = skew_ppm

    def corrupt_stream(
        self,
        stream: ObservationStream,
        round_s: float,
        rng: np.random.Generator,
    ) -> ObservationStream:
        times = stream.times
        if len(times) == 0:
            return stream
        origin = times[0]
        skewed = origin + (times - origin) * (1.0 + self.skew_ppm * 1e-6)
        if self.jitter_s > 0:
            skewed = skewed + rng.normal(0.0, self.jitter_s, len(times))
        return ObservationStream(skewed, stream.values)

    def describe(self) -> str:
        return f"ClockSkew({self.skew_ppm}ppm, jitter {self.jitter_s}s)"


class ProberCrashInjector(FaultInjector):
    """Unscheduled prober crashes: extra restarts at random rounds."""

    def __init__(self, crashes_per_day: float) -> None:
        self.crashes_per_day = crashes_per_day

    def crash_rounds(
        self, schedule: RoundSchedule, rng: np.random.Generator
    ) -> np.ndarray:
        n = schedule.n_rounds
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        p = min(self.crashes_per_day * schedule.round_s / _DAY_SECONDS, 1.0)
        rounds = np.flatnonzero(rng.random(n) < p).astype(np.int64)
        return rounds[rounds > 0]  # round 0 is a cold start, not a crash

    def describe(self) -> str:
        return f"ProberCrash({self.crashes_per_day}/day)"

"""Crash points: kill a run at a named place, deterministically.

The crash-recovery chaos harness needs to stop a run *exactly* where a
real crash could — between writing a checkpoint's temp file and renaming
it, halfway through a journal frame, between two blocks of a batch, or
in the middle of a worker's task.  Production code marks those places
with :func:`crashpoint`; the call is a dict lookup when nothing is
armed, so the hooks cost nothing outside chaos tests.

A test arms a point with :func:`arm` (or the :func:`armed` context
manager) and the ``hits``-th call fires.  Two actions exist:

* ``"raise"`` — raise :class:`InjectedCrash`.  It subclasses
  ``BaseException`` (like ``KeyboardInterrupt``) on purpose: the batch
  runner's per-block isolation catches ``Exception``, and a simulated
  process death must tear through that boundary, not be recorded as a
  :class:`~repro.core.pipeline.BlockFailure`.
* ``"exit"`` — ``os._exit(1)``: no cleanup, no atexit, no flushing —
  the closest a test can get to ``SIGKILL``.  Used to kill pool workers.

``marker`` makes a crash one-shot *across processes*: the point only
fires if it can atomically create the marker file.  A forked worker that
respawns inherits the armed state, and without the marker it would die
again on every respawn, turning "one crash" into a poison block.

Everything here is stdlib-only so any module can import it without
dependency cycles.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "InjectedCrash",
    "any_armed",
    "arm",
    "armed",
    "crashpoint",
    "disarm",
    "fired",
    "set_crash_observer",
]

_EXIT_CODE = 17  # distinctive, so tests can assert the death was injected


class InjectedCrash(BaseException):
    """A simulated process death, raised at an armed crash point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class _ArmedPoint:
    hits: int
    action: str
    marker: str | None
    calls: int = 0
    fired: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


# Module-global armed table.  Empty (falsy) outside chaos tests, so the
# hot-path cost of an unarmed crashpoint() is one dict identity check.
_armed: dict[str, _ArmedPoint] = {}

# Called as observer(point, action) just before an armed point fires —
# the process's last chance to dump a flight recorder before ``exit``
# (which skips every atexit/finally).  One per process; pool workers
# install theirs after the fork.
_observer = None


def set_crash_observer(observer) -> None:
    """Install (or, with None, remove) the pre-crash callback.

    The observer runs after the firing decision is final, so it cannot
    prevent the crash; its exceptions are swallowed for the same reason.
    """
    global _observer
    _observer = observer


def arm(point: str, hits: int = 1, action: str = "raise",
        marker: str | os.PathLike | None = None) -> None:
    """Arm ``point`` to fire on its ``hits``-th call.

    ``action`` is ``"raise"`` (raise :class:`InjectedCrash`) or
    ``"exit"`` (``os._exit``, for killing worker processes).  With
    ``marker``, the point fires only if it can create that file with
    ``O_CREAT | O_EXCL`` — exactly-once semantics shared by every
    process that inherited the armed state.
    """
    if hits < 1:
        raise ValueError("hits must be at least 1")
    if action not in ("raise", "exit"):
        raise ValueError(f"unknown crash action {action!r}")
    _armed[point] = _ArmedPoint(
        hits=hits,
        action=action,
        marker=None if marker is None else os.fspath(marker),
    )


def disarm(point: str | None = None) -> None:
    """Disarm one point, or every point when ``point`` is None."""
    if point is None:
        _armed.clear()
    else:
        _armed.pop(point, None)


def any_armed() -> bool:
    """True when at least one crash point is armed (chaos test running)."""
    return bool(_armed)


def fired(point: str) -> int:
    """How many times ``point`` has fired since it was armed (0 if not)."""
    entry = _armed.get(point)
    return 0 if entry is None else entry.fired


def _claim_marker(path: str) -> bool:
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def crashpoint(point: str) -> None:
    """Fire ``point`` if armed; no-op (one dict lookup) otherwise."""
    if not _armed:
        return
    entry = _armed.get(point)
    if entry is None:
        return
    with entry.lock:
        entry.calls += 1
        due = entry.calls == entry.hits
    if not due:
        return
    if entry.marker is not None and not _claim_marker(entry.marker):
        return
    entry.fired += 1
    if _observer is not None:
        try:
            _observer(point, entry.action)
        except Exception:  # noqa: BLE001 — observing must not alter the crash
            pass
    if entry.action == "exit":
        os._exit(_EXIT_CODE)
    raise InjectedCrash(point)


@contextmanager
def armed(point: str, hits: int = 1, action: str = "raise",
          marker: str | os.PathLike | None = None):
    """Arm ``point`` for the duration of a ``with`` block, then disarm."""
    arm(point, hits=hits, action=action, marker=marker)
    try:
        yield
    finally:
        disarm(point)

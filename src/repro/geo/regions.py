"""Country-to-region mapping, following the paper's Table 4 region names.

The paper groups countries into UN-style statistical regions ("Northern
America", "Eastern Asia", ...).  The mapping here covers every country in
the synthetic world model plus the rest of the paper's Table 3.
"""

from __future__ import annotations

__all__ = ["REGIONS", "COUNTRY_REGION", "region_of"]

# The sixteen regions of the paper's Table 4, in the paper's (ascending
# diurnal-fraction) order.
REGIONS = (
    "Northern America",
    "Southern Africa",
    "Western Europe",
    "Northern Europe",
    "Caribbean",
    "Oceania",
    "Western Asia",
    "Northern Africa",
    "Southern Europe",
    "Central America",
    "Eastern Europe",
    "Southern Asia",
    "South America",
    "South-Eastern Asia",
    "Eastern Asia",
    "Central Asia",
)

COUNTRY_REGION: dict[str, str] = {
    # Northern America
    "US": "Northern America",
    "CA": "Northern America",
    # Western Europe
    "DE": "Western Europe",
    "FR": "Western Europe",
    "NL": "Western Europe",
    "BE": "Western Europe",
    "CH": "Western Europe",
    "AT": "Western Europe",
    # Northern Europe
    "GB": "Northern Europe",
    "SE": "Northern Europe",
    "NO": "Northern Europe",
    "FI": "Northern Europe",
    "DK": "Northern Europe",
    # Southern Europe
    "IT": "Southern Europe",
    "ES": "Southern Europe",
    "PT": "Southern Europe",
    "GR": "Southern Europe",
    "RS": "Southern Europe",
    "HR": "Southern Europe",
    # Eastern Europe
    "RU": "Eastern Europe",
    "UA": "Eastern Europe",
    "BY": "Eastern Europe",
    "PL": "Eastern Europe",
    "RO": "Eastern Europe",
    "CZ": "Eastern Europe",
    "HU": "Eastern Europe",
    "BG": "Eastern Europe",
    # Western Asia
    "AM": "Western Asia",
    "GE": "Western Asia",
    "TR": "Western Asia",
    "IL": "Western Asia",
    "SA": "Western Asia",
    "AE": "Western Asia",
    # Central Asia
    "KZ": "Central Asia",
    "UZ": "Central Asia",
    # Southern Asia
    "IN": "Southern Asia",
    "PK": "Southern Asia",
    "BD": "Southern Asia",
    "IR": "Southern Asia",
    "LK": "Southern Asia",
    # Eastern Asia
    "CN": "Eastern Asia",
    "JP": "Eastern Asia",
    "KR": "Eastern Asia",
    "TW": "Eastern Asia",
    "HK": "Eastern Asia",
    "MN": "Eastern Asia",
    # South-Eastern Asia
    "TH": "South-Eastern Asia",
    "MY": "South-Eastern Asia",
    "PH": "South-Eastern Asia",
    "VN": "South-Eastern Asia",
    "ID": "South-Eastern Asia",
    "SG": "South-Eastern Asia",
    # South America
    "BR": "South America",
    "AR": "South America",
    "CO": "South America",
    "PE": "South America",
    "CL": "South America",
    "VE": "South America",
    "EC": "South America",
    # Central America
    "MX": "Central America",
    "SV": "Central America",
    "GT": "Central America",
    "CR": "Central America",
    "PA": "Central America",
    # Caribbean
    "CU": "Caribbean",
    "DO": "Caribbean",
    "JM": "Caribbean",
    "PR": "Caribbean",
    "TT": "Caribbean",
    # Northern Africa
    "MA": "Northern Africa",
    "EG": "Northern Africa",
    "DZ": "Northern Africa",
    "TN": "Northern Africa",
    # Southern Africa
    "ZA": "Southern Africa",
    "NA": "Southern Africa",
    "BW": "Southern Africa",
    # Oceania
    "AU": "Oceania",
    "NZ": "Oceania",
    "FJ": "Oceania",
}


def region_of(country_code: str) -> str:
    """Region of a two-letter ISO country code.

    Raises KeyError for unknown codes, which in this library always
    indicates a world-model bug rather than missing data.
    """
    try:
        return COUNTRY_REGION[country_code.upper()]
    except KeyError:
        raise KeyError(f"no region mapping for country {country_code!r}") from None

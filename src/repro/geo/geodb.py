"""A MaxMind-like geolocation database over /24 blocks.

The real database resolves ~93% of blocks, claims ~40 km accuracy, and —
when it knows only the country — places blocks at the country's geographic
centroid, producing the artifacts the paper points out in Brazil, Russia
and Australia (Figure 12).  The synthetic database carries the same
structure: per-block records flagged ``city_precision`` or centroid-only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GeoDatabase", "GeoRecord"]


@dataclass(frozen=True)
class GeoRecord:
    """Location of one /24 block.

    Attributes:
        lat, lon: degrees; city-jittered or country centroid.
        country: two-letter ISO code.
        city_precision: False when only the country was known and the
            coordinates are the country centroid.
    """

    lat: float
    lon: float
    country: str
    city_precision: bool = True


class GeoDatabase:
    """Block-id → :class:`GeoRecord` lookup with MaxMind-style coverage."""

    def __init__(self, records: dict[int, GeoRecord]) -> None:
        self._records = dict(records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._records

    def lookup(self, block_id: int) -> GeoRecord | None:
        """Locate one block; None when the database has no record."""
        return self._records.get(block_id)

    def coverage(self, block_ids: np.ndarray) -> float:
        """Fraction of the given blocks that geolocate (paper: ~93%)."""
        if len(block_ids) == 0:
            return 0.0
        hits = sum(1 for b in np.asarray(block_ids).tolist() if b in self._records)
        return hits / len(block_ids)

    def centroid_fraction(self) -> float:
        """Fraction of records that are country-centroid fallbacks."""
        if not self._records:
            return 0.0
        centroid = sum(1 for r in self._records.values() if not r.city_precision)
        return centroid / len(self._records)

    def locate_many(
        self, block_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized lookup: (lats, lons, located-mask).

        Unlocatable blocks get NaN coordinates and a False mask entry.
        """
        block_ids = np.asarray(block_ids)
        n = len(block_ids)
        lats = np.full(n, np.nan)
        lons = np.full(n, np.nan)
        located = np.zeros(n, dtype=bool)
        for i, block_id in enumerate(block_ids.tolist()):
            record = self._records.get(block_id)
            if record is not None:
                lats[i] = record.lat
                lons[i] = record.lon
                located[i] = True
        return lats, lons, located

    def countries(self, block_ids: np.ndarray) -> np.ndarray:
        """Country code per block ('' where unlocatable)."""
        out = np.empty(len(block_ids), dtype=object)
        for i, block_id in enumerate(np.asarray(block_ids).tolist()):
            record = self._records.get(block_id)
            out[i] = record.country if record is not None else ""
        return out

"""2°x2° world gridding for the paper's Figures 12 and 13."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorldGrid", "grid_counts", "grid_fraction"]


@dataclass
class WorldGrid:
    """A lat/lon grid of cells covering the world.

    ``values`` is indexed [lat_cell, lon_cell], latitude rows running from
    -90 (index 0) northward.
    """

    values: np.ndarray
    cell_deg: float

    @property
    def n_lat(self) -> int:
        return self.values.shape[0]

    @property
    def n_lon(self) -> int:
        return self.values.shape[1]

    def cell_of(self, lat: float, lon: float) -> tuple[int, int]:
        """Grid cell containing a coordinate."""
        i = int(np.clip((lat + 90.0) / self.cell_deg, 0, self.n_lat - 1))
        j = int(np.clip((lon + 180.0) / self.cell_deg, 0, self.n_lon - 1))
        return i, j

    def value_at(self, lat: float, lon: float) -> float:
        i, j = self.cell_of(lat, lon)
        return float(self.values[i, j])


def _cell_indices(
    lats: np.ndarray, lons: np.ndarray, cell_deg: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    valid = ~(np.isnan(lats) | np.isnan(lons))
    n_lat = int(np.ceil(180.0 / cell_deg))
    n_lon = int(np.ceil(360.0 / cell_deg))
    i = np.clip(((lats[valid] + 90.0) / cell_deg).astype(np.int64), 0, n_lat - 1)
    j = np.clip(((lons[valid] + 180.0) / cell_deg).astype(np.int64), 0, n_lon - 1)
    return i, j, valid, n_lat, n_lon


def grid_counts(
    lats: np.ndarray, lons: np.ndarray, cell_deg: float = 2.0
) -> WorldGrid:
    """Count points per grid cell (Figure 12: observable blocks per cell)."""
    i, j, _, n_lat, n_lon = _cell_indices(lats, lons, cell_deg)
    counts = np.zeros((n_lat, n_lon))
    np.add.at(counts, (i, j), 1.0)
    return WorldGrid(values=counts, cell_deg=cell_deg)


def grid_fraction(
    lats: np.ndarray,
    lons: np.ndarray,
    mask: np.ndarray,
    cell_deg: float = 2.0,
    min_count: int = 1,
) -> WorldGrid:
    """Per-cell fraction of points with ``mask`` set (Figure 13).

    Cells holding fewer than ``min_count`` points report NaN, so sparsely
    observed cells do not show as spuriously extreme.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != np.asarray(lats).shape:
        raise ValueError("mask must match coordinate arrays")
    i, j, valid, n_lat, n_lon = _cell_indices(lats, lons, cell_deg)
    totals = np.zeros((n_lat, n_lon))
    hits = np.zeros((n_lat, n_lon))
    np.add.at(totals, (i, j), 1.0)
    np.add.at(hits, (i, j), mask[valid].astype(np.float64))
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = hits / totals
    frac[totals < min_count] = np.nan
    return WorldGrid(values=frac, cell_deg=cell_deg)

"""Geolocation substrate: a MaxMind-like block database and world gridding.

The paper maps each /24 to a city-level location with MaxMind's GeoIP
database (claimed accuracy 40 km, ~93% coverage, country-centroid fallbacks
when only the country is known).  :class:`~repro.geo.geodb.GeoDatabase`
reproduces that interface over the simulated world, including the coverage
gaps and centroid anomalies visible in the paper's Figure 12.
"""

from repro.geo.geodb import GeoDatabase, GeoRecord
from repro.geo.grid import WorldGrid, grid_counts, grid_fraction
from repro.geo.regions import REGIONS, region_of

__all__ = [
    "GeoDatabase",
    "GeoRecord",
    "REGIONS",
    "WorldGrid",
    "grid_counts",
    "grid_fraction",
    "region_of",
]

"""Table 2: the same Internet measured from two vantage points.

Paper (A_12w vs A_12j): of A_12w's strictly diurnal blocks, the second
site finds 85% strictly diurnal and 98.8% at least relaxed — strong
disagreement in only ~1.2% — so the approach is not sensitive to
measurement location.
"""

from repro.analysis import run_cross_site


def test_tab2_cross_site(benchmark, record_output, global_study):
    comparison = benchmark.pedantic(
        run_cross_site, kwargs=dict(study=global_study), rounds=1, iterations=1
    )
    record_output("tab2_cross_site", comparison.format_table())

    assert comparison.strict_overlap_fraction() > 0.75   # paper: 85%
    assert comparison.either_overlap_fraction() > 0.95   # paper: 98.8%
    assert comparison.strong_disagreement_fraction() < 0.05  # paper: 1.2%
    assert comparison.agreement_fraction() > 0.75

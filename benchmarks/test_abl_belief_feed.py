"""Ablation: which availability estimate may drive the outage belief?

Section 2.1.1's design constraint, made measurable: run the full prober
over blocks with injected outages, feeding the Bayesian belief either the
conservative Â_o (the paper's design) or the unbiased short-term Â_s.
Both detect the injected outages; only the conservative feed avoids
false outages on healthy low-availability blocks.
"""

from repro.analysis import run_outage_validation


def run_both():
    kwargs = dict(n_blocks=30, days=7.0, availability=0.35, seed=6)
    return {
        feed: run_outage_validation(feed=feed, **kwargs)
        for feed in ("operational", "short", "long")
    }


def test_abl_belief_feed(benchmark, record_output):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_output(
        "abl_belief_feed",
        "\n".join(results[f].format_table() for f in ("operational", "short", "long")),
    )

    # All feeds detect the injected outages promptly.
    for result in results.values():
        assert result.detection_rate > 0.9
        assert result.median_latency_rounds < 10
    # Only the conservative operational feed avoids false outages.
    assert results["operational"].false_outage_rate < 0.0005
    assert (
        results["short"].false_outage_rate
        > 5 * max(results["operational"].false_outage_rate, 1e-6)
    )

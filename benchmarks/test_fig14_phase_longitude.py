"""Figure 14: FFT phase versus longitude.

Paper: unrolled phase correlates with longitude at 0.835 for strict and
0.763 for relaxed diurnal blocks; the 100-140°E band (China's single
timezone over a wide country plus geolocation error) is the visible
anomaly; most phases predict longitude within ±20°.
"""

from repro.analysis import run_phase_longitude


def test_fig14_phase_longitude(benchmark, record_output, global_study):
    def run_both():
        strict = run_phase_longitude(study=global_study, population="strict")
        relaxed = run_phase_longitude(study=global_study, population="relaxed")
        return strict, relaxed

    strict, relaxed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_output(
        "fig14_phase_longitude",
        strict.format_series() + "\n\n" + relaxed.format_series(),
    )

    # Strong correlation for both populations (paper: 0.835 / 0.763).
    assert strict.correlation() > 0.7
    assert relaxed.correlation() > 0.6
    # Strict is the larger-signal population; relaxed has more blocks.
    assert relaxed.n_blocks > strict.n_blocks
    # The China band hurts: excluding 100-140E improves the fit.
    assert strict.correlation_excluding(100, 140) >= strict.correlation()
    # Phase predicts longitude usefully (paper: ±20° typical).
    assert strict.predictor_precision() < 35.0

"""Ablation: adaptive (stop-on-first-positive) versus exhaustive sampling.

Section 2.1.1's first challenge: outage-detection probing is biased in
favour of positive responses.  Feeding the same estimator the survey's
unbiased counts versus the adaptive prober's biased counts shows the
count-based EWMA absorbs the bias, at ~1/100th the probing cost.
"""

import numpy as np

from repro.core.estimator import AvailabilityEstimator
from repro.core.pipeline import measure_block
from repro.probing import RoundSchedule, run_survey
from repro.simulation.scenarios import survey_population


def run_comparison():
    blocks = survey_population(25, seed=9)
    schedule = RoundSchedule.for_days(7)
    children = np.random.SeedSequence(77).spawn(len(blocks))
    rows = []
    for block, child in zip(blocks, children):
        rng = np.random.default_rng(child)
        adaptive = measure_block(block, schedule, rng)
        if adaptive.skipped:
            continue
        oracle = block.realize(schedule.times(), np.random.default_rng(child))
        survey = run_survey(oracle, schedule)
        # Feed the survey's unbiased per-round counts (over E(b)) to the
        # same estimator.
        est = AvailabilityEstimator()
        survey_a = []
        active = oracle.ever_active
        for r in range(schedule.n_rounds):
            p = int(oracle.responses[active, r].sum())
            est.observe(p, len(active))
            survey_a.append(est.a_short)
        truth = adaptive.true_availability
        tail = slice(100, None)
        rows.append(
            (
                float(np.abs(np.array(survey_a)[tail] - truth[tail]).mean()),
                float(np.abs(adaptive.a_short[tail] - truth[tail]).mean()),
                survey.total_probes,
                adaptive.total_probes,
            )
        )
    return rows


def test_abl_sampling_bias(benchmark, record_output):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    survey_err = np.mean([r[0] for r in rows])
    adaptive_err = np.mean([r[1] for r in rows])
    survey_cost = np.mean([r[2] for r in rows])
    adaptive_cost = np.mean([r[3] for r in rows])
    text = (
        f"blocks compared: {len(rows)}\n"
        f"mean |A_s - A|, survey counts:   {survey_err:.4f}\n"
        f"mean |A_s - A|, adaptive counts: {adaptive_err:.4f}\n"
        f"probes per block, survey:        {survey_cost:,.0f}\n"
        f"probes per block, adaptive:      {adaptive_cost:,.0f}\n"
        f"cost ratio: {survey_cost / adaptive_cost:.0f}x"
    )
    record_output("abl_sampling_bias", text)

    # Adaptive sampling is noisier but not pathologically biased...
    assert adaptive_err < 0.12
    assert adaptive_err < 6 * max(survey_err, 0.01)
    # ...and saves two orders of magnitude in probes.
    assert survey_cost / adaptive_cost > 50

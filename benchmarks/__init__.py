"""Benchmark harness package.

Package-ness exists so :mod:`benchmarks.trajectory` is importable from
the ablations, the tier-1 unit tests, and the CI regression step
(``python -m benchmarks.trajectory --check``) alike.  pytest still
discovers the ``test_*`` modules here exactly as before; tier-1 runs
exclude the directory via ``testpaths``.
"""

"""Application: diurnal-corrected Internet census (paper section 5.6).

"One can scan the IPv4 space in tens of minutes to estimate the
availability of each /24 block, but this near-snapshot will be
representative only for non-diurnal blocks."  This bench quantifies the
snapshot's time-of-day error on the measured world and shows the
correction the paper prescribes (several measurements across the day for
blocks classified diurnal) removing it.
"""

from repro.analysis import run_census


def test_app_census(benchmark, record_output, global_study):
    census = benchmark.pedantic(
        run_census, kwargs=dict(study=global_study), rounds=1, iterations=1
    )
    record_output("app_census", census.format_series())

    # The naive snapshot is biased by time of day...
    assert census.worst_snapshot_error() > 0.01
    # ...and the diurnal correction removes most of the swing.
    assert census.worst_corrected_error() < census.worst_snapshot_error() / 2
    # Corrected estimates are near the truth at every hour.
    assert census.corrected_errors().max() < 0.03

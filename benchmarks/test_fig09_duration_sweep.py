"""Figure 9: detection accuracy versus uptime-duration noise σ_d.

Paper: daily resynchronization means duration noise mostly cancels;
accuracy degrades only slightly and only for σ_d above ~10 hours, so the
detector works across the whole range of realistic human schedules.
"""

from repro.analysis import run_sensitivity_sweep


def test_fig09_duration_sweep(benchmark, record_output):
    sweep = benchmark.pedantic(
        run_sensitivity_sweep,
        args=("fig9_duration",),
        kwargs=dict(n_batches=3, experiments_per_batch=12, days=14.0, seed=9),
        rounds=1,
        iterations=1,
    )
    record_output("fig09_duration_sweep", sweep.format_series())

    by_hour = {p.value / 3600: p.median for p in sweep.points}
    assert by_hour[0] == 1.0
    # A few hours of noise barely matter.
    assert by_hour[4] >= 0.9
    assert by_hour[8] >= 0.8
    # Even extreme noise degrades gracefully, not catastrophically —
    # the contrast with Figure 8's sharp phase cliff.
    assert by_hour[24] >= 0.4

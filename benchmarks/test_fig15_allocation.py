"""Figure 15: diurnal fraction by block-allocation date.

Paper: newer allocations are more often diurnal — linear slope +0.08%
per month with correlation 0.609 — reflecting progressively stricter
address-use policies; the effect is independent of GDP (country-level
correlations of allocation age with GDP are below 0.27).
"""

from repro.analysis import run_allocation_trend


def test_fig15_allocation(benchmark, record_output, global_study):
    trend = benchmark.pedantic(
        run_allocation_trend, kwargs=dict(study=global_study), rounds=1, iterations=1
    )
    record_output("fig15_allocation", trend.format_series())

    fit = trend.fit()
    # Positive slope in the paper's units (percent per month).
    assert 0.02 < trend.slope_percent_per_month() < 0.30  # paper: +0.08
    assert fit.r > 0.4                                    # paper: 0.609
    assert fit.p_value < 0.01
    # Independence from GDP (paper: |rho| < 0.27).
    assert abs(trend.gdp_vs_first_alloc) < 0.35
    assert abs(trend.gdp_vs_mean_alloc) < 0.35

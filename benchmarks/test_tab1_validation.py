"""Table 1: diurnal detection validated against survey ground truth.

Paper (29k survey blocks): 9.97% correctly diurnal, 81.02% correctly
non-diurnal, 6.89% missed, 2.12% falsely flagged — precision 82.48%,
accuracy 90.99%, deliberately biased toward false negatives.  Also the
stationarity check: ~80.3% of blocks drift less than one address/day.
"""

from repro.analysis import run_diurnal_validation


def test_tab1_validation(benchmark, record_output):
    result = benchmark.pedantic(
        run_diurnal_validation,
        kwargs=dict(n_blocks=200, seed=1),
        rounds=1,
        iterations=1,
    )
    record_output("tab1_validation", result.format_table())

    assert result.accuracy > 0.82          # paper: 90.99%
    assert result.precision > 0.80         # paper: 82.48%
    assert result.false_negative_biased    # misses >= false alarms
    assert result.recall < 1.0             # the conservative bias is real
    assert 0.70 < result.stationary_fraction < 0.95  # paper: 80.3%

"""Figure 17: fraction of diurnal blocks per access-link keyword.

Paper: 22.4% of blocks classify into the nine analyzable keywords (46.3%
show some feature); dynamic addressing is strongly diurnal (~19%), DSL
moderately (~11%), and — surprisingly — dial-up barely at all (<3%):
"measure, don't assume".
"""

from repro.analysis import run_linktype_study


def test_fig17_linktype(benchmark, record_output, global_study):
    study = benchmark.pedantic(
        run_linktype_study,
        kwargs=dict(study=global_study, max_classified=6000),
        rounds=1,
        iterations=1,
    )
    record_output("fig17_linktype", study.format_table())

    # Feature coverage near the paper's 46.3% / 11.4%.
    assert 0.35 < study.feature_fraction < 0.58
    assert 0.05 < study.multi_feature_fraction < 0.30

    dyn = study.fraction_of("dyn")
    dsl = study.fraction_of("dsl")
    dial = study.fraction_of("dial")
    srv = study.fraction_of("srv")
    # The paper's ordering: dynamic >> dsl > dial; servers near zero.
    assert 0.10 < dyn < 0.30      # paper: ~0.19
    assert 0.05 < dsl < 0.22      # paper: ~0.11
    assert dial < 0.08            # paper: <0.03
    assert dyn > dsl > dial
    assert srv < 0.06

"""Ablation: cost of telemetry history + incident watch per cycle.

The :class:`~repro.obs.history.MetricsHistory` store earns its
always-on place in the service only if the supervision loop barely
notices it.  The loop runs every ``heartbeat_interval_s`` (50ms); the
history sample is throttled to one per 250ms, the windowed alert rule
re-aggregates its series every cycle, and the incident recorder
inspects every cycle's transitions.  This ablation replays that
observe step — SLO quantiles + alert evaluation, with and without the
history/incident machinery — over a fleet-shaped registry and gates
the *added* wall time per cycle at <5% of the 50ms cycle budget.

Measured as best-of-N interleaved off/on pairs (both sides of a pair
share the machine's load phase), like every other overhead gate here.
"""

import math
import time
from pathlib import Path

from repro.obs import MetricsRegistry
from repro.obs.alerts import AlertEngine, default_service_rules
from repro.obs.history import HistoryConfig, MetricsHistory
from repro.obs.incidents import IncidentConfig, IncidentRecorder
from repro.obs.registry import histogram_quantile

RESULTS_DIR = Path(__file__).parent / "results"

N_CYCLES = 2000
REPS = 5
CYCLE_S = 0.05  # the runner's heartbeat_interval_s
MAX_OVERHEAD = 0.05  # of the cycle budget
N_SHARDS = 4
ROUTES = ("POST /observations", "GET /blocks/{id}/state", "GET /healthz")


def fleet_registry() -> MetricsRegistry:
    """A registry shaped like the service's fleet aggregate."""
    reg = MetricsRegistry()
    reg.counter("service_ingest_observations_total").inc(100_000)
    reg.counter("service_ingest_rejected_total").inc(3)
    reg.counter("service_requests_total").inc(5_000)
    reg.gauge("service_shards_unhealthy").set(0)
    reg.gauge("service_request_p99_seconds").set(0.01)
    reg.gauge("stream_shed_ratio").set(0.001)
    reg.gauge("stream_ingest_queue_depth").set(12)
    reg.meter("service_error_ratio").observe(0.0)
    for shard in range(N_SHARDS):
        reg.counter("service_shard_respawns_total",
                    reason="crashed").inc(0)
        reg.gauge("stream_queue_depth", shard=str(shard)).set(3)
    for route in ROUTES:
        hist = reg.histogram("service_request_seconds", route=route)
        for i in range(200):
            hist.observe(0.001 + 0.0001 * (i % 17))
    return reg


def observe_cycles(with_history: bool, tmp_dir: Path) -> float:
    """Wall time for N_CYCLES supervision observe steps."""
    reg = fleet_registry()
    depth = reg.gauge("stream_ingest_queue_depth")
    ingested = reg.counter("service_ingest_observations_total")
    request_hists = [
        m for m in reg.collect() if m.name == "service_request_seconds"
    ]
    p99 = reg.gauge("service_request_p99_seconds")
    engine = AlertEngine(default_service_rules())
    history = MetricsHistory(HistoryConfig()) if with_history else None
    recorder = (
        IncidentRecorder(IncidentConfig(dir=tmp_dir), history=history)
        if with_history else None
    )
    t0 = time.perf_counter()
    for i in range(N_CYCLES):
        now = i * CYCLE_S
        # The telemetry the loop itself refreshes each cycle.
        depth.set(10 + i % 7)
        ingested.inc(50)
        q = histogram_quantile(request_hists, 0.99)
        p99.set(0.0 if math.isnan(q) else q)
        if history is not None:
            if history.sample(reg, now):
                for shard in range(N_SHARDS):
                    history.append("service_shard_healthy", now, 1.0,
                                   {"shard": shard})
        transitions = engine.evaluate(reg, history)
        if recorder is not None:
            recorder.observe(transitions, registry=reg, now=now)
    elapsed = time.perf_counter() - t0
    if history is not None:
        # The store actually watched the run (throttle = 1 in 5
        # cycles) and stayed bounded — cheap-because-blind would pass
        # the gate dishonestly.
        assert history.n_samples >= N_CYCLES // 5
        assert history.point_count() > 0
        assert recorder.n_captured == 0  # healthy fleet: no bundles
    return elapsed


def run_ablation(tmp_dir: Path):
    observe_cycles(False, tmp_dir)  # warm both paths
    observe_cycles(True, tmp_dir)
    pairs = []
    for _ in range(REPS):
        t_off = observe_cycles(False, tmp_dir)
        t_on = observe_cycles(True, tmp_dir)
        pairs.append((t_off, t_on))
    return pairs


def test_abl_history_overhead(benchmark, record_output, trajectory,
                              tmp_path):
    pairs = benchmark.pedantic(
        run_ablation, args=(tmp_path,), rounds=1, iterations=1
    )
    t_off = min(t for t, _ in pairs)
    t_on = min(t for _, t in pairs)
    added_per_cycle = (t_on - t_off) / N_CYCLES
    overhead = added_per_cycle / CYCLE_S

    lines = [
        f"{'path':>16}{'wall ms':>10}{'us/cycle':>10}",
        f"{'history off':>16}{t_off * 1e3:>10.1f}"
        f"{t_off / N_CYCLES * 1e6:>10.2f}",
        f"{'history on':>16}{t_on * 1e3:>10.1f}"
        f"{t_on / N_CYCLES * 1e6:>10.2f}",
        "",
        f"added per cycle: {added_per_cycle * 1e6:.2f}us "
        f"of the {CYCLE_S * 1e3:.0f}ms cycle budget",
        f"overhead: {overhead:+.3%} (budget {MAX_OVERHEAD:.0%}, "
        f"best of {REPS})",
    ]
    record_output("abl_history_overhead", "\n".join(lines))
    trajectory.record(
        "abl_history_overhead", "history_cycle_overhead",
        overhead, unit="fraction", kind="ratio",
    )
    assert overhead < MAX_OVERHEAD, (
        f"history adds {added_per_cycle * 1e6:.1f}us/cycle "
        f"({overhead:.2%} of the {CYCLE_S * 1e3:.0f}ms budget; "
        f"gate {MAX_OVERHEAD:.0%})"
    )

"""Figure 8: detection accuracy versus phase spread Φ.

Paper: accuracy holds while per-address wake times spread up to ~half a
day, then drops sharply around Φ = 14 hours — individual signals blur and
the strict 2x-dominance requirement fails.  Typical human phase spread is
under 4 hours, far inside the safe region.
"""

from repro.analysis import run_sensitivity_sweep


def test_fig08_phase_sweep(benchmark, record_output):
    sweep = benchmark.pedantic(
        run_sensitivity_sweep,
        args=("fig8_phase",),
        kwargs=dict(n_batches=3, experiments_per_batch=12, days=14.0, seed=8),
        rounds=1,
        iterations=1,
    )
    record_output("fig08_phase_sweep", sweep.format_series())

    by_hour = {p.value / 3600: p.median for p in sweep.points}
    # Human-scale spreads are safe.
    assert by_hour[0] == 1.0
    assert by_hour[4] >= 0.9
    assert by_hour[8] >= 0.8
    # The sharp drop: by 20+ hours of spread detection has collapsed.
    assert by_hour[24] <= 0.3
    assert by_hour[20] < by_hour[8]

"""Ablation: supervised PoolRunner versus serial BatchRunner, and the
price of durability.

Two claims carry the robustness layer.  **Determinism**: the pooled
runner exists to survive hung and dying workers, and that is only safe
if supervision never changes the science — its merged results must be
bit-identical to serial execution for the same seed.  **Cost**: the
durability machinery (write-ahead journal on the streaming path, atomic
checksummed checkpoint writes on the batch path) must be cheap enough
to leave on everywhere; the acceptance bar is <10% overhead for
journaling on the streaming parity workload.

The table reports serial and pooled wall-clock with the speedup ratio
(on a single-CPU container the pool's process overhead typically makes
this <1; the number is reported, not asserted), the journal overhead on
the streaming workload (asserted <10%), and the atomic-write overhead
per checkpoint flush.
"""

import time
from pathlib import Path

import numpy as np

from repro.core import (
    BatchConfig,
    BatchRunner,
    PoolConfig,
    PoolRunner,
)
from repro.net import (
    Block24,
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
)
from repro.probing import RoundSchedule
from repro.stream import StreamConfig, StreamEngine, StreamJournal

RESULTS_DIR = Path(__file__).parent / "results"

N_BLOCKS = 16
SCHEDULE = RoundSchedule.for_days(3)
SEED = 21

STREAM_DAYS = 6
STREAM_BLOCKS = 6
ROUND = 660.0
DAY = 86400.0


def make_blocks():
    behavior = merge_behaviors(
        make_always_on(40),
        make_diurnal(80, phase_s=6 * 3600),
        make_dead(136),
    )
    return [Block24(i, behavior) for i in range(N_BLOCKS)]


def assert_bit_identical(serial, pooled):
    assert len(serial.results) == len(pooled.results)
    for a, b in zip(serial.results, pooled.results):
        assert type(a) is type(b)
        for name in a._ROUND_ARRAYS:
            np.testing.assert_array_equal(
                getattr(a, name), getattr(b, name)
            )
        assert a.report == b.report
        assert a.true_report == b.true_report


def stream_population():
    rng = np.random.default_rng(SEED)
    n = int(STREAM_DAYS * DAY / ROUND)
    times = np.arange(n) * ROUND
    streams = {}
    for block in range(STREAM_BLOCKS):
        amplitude = rng.uniform(0.2, 0.45)
        phase = rng.uniform(0, 2 * np.pi)
        streams[block] = (
            times,
            0.5
            + amplitude * np.sin(2 * np.pi * times / DAY + phase)
            + 0.02 * rng.standard_normal(n),
        )
    return streams


def ingest_all(engine, streams, journal=None):
    # The write-ahead discipline, block batch by block batch: journal
    # the batch first, then hand it to the engine.
    for block, (times, values) in streams.items():
        if journal is not None:
            journal.append_many(block, times, values)
        engine.ingest_many(block, times, values)
    engine.flush()
    if journal is not None:
        journal.flush()


def journal_overhead(tmp_path):
    """Best-of-5: bare ingest, journal-only, and combined wall-clock.

    The overhead fraction is computed from the two isolated minima
    (journal-only / bare) rather than from one paired run — on a noisy
    shared box, paired wall-clock differences of a few percent drown in
    scheduler jitter, while per-path minima are stable.
    """
    streams = stream_population()
    config = StreamConfig.for_days(2, hop_days=1)
    bare_times, journal_times, combined_times = [], [], []
    for trial in range(5):
        engine = StreamEngine(config)
        t0 = time.perf_counter()
        ingest_all(engine, streams)
        bare_times.append(time.perf_counter() - t0)

        with StreamJournal(
            tmp_path / f"wal-only-{trial}", sync_every=1024
        ) as journal:
            t0 = time.perf_counter()
            for block, (times, values) in streams.items():
                journal.append_many(block, times, values)
            journal.flush()
            journal_times.append(time.perf_counter() - t0)

        engine = StreamEngine(config)
        with StreamJournal(
            tmp_path / f"wal-{trial}", sync_every=1024
        ) as journal:
            t0 = time.perf_counter()
            ingest_all(engine, streams, journal)
            combined_times.append(time.perf_counter() - t0)
    return min(bare_times), min(journal_times), min(combined_times)


def checkpoint_write_cost(tmp_path, result):
    """Per-flush cost of the atomic, checksummed checkpoint write."""
    from repro.datasets.io import save_batch_checkpoint

    entries = dict(enumerate(result.results))
    t0 = time.perf_counter()
    for i in range(3):
        save_batch_checkpoint(
            tmp_path / "ck.npz",
            entries,
            SCHEDULE,
            meta={"seed": SEED, "n_blocks": len(entries)},
        )
    return (time.perf_counter() - t0) / 3


def test_pool_runner_parity_and_durability_cost(tmp_path, record_output):
    blocks = make_blocks()

    t0 = time.perf_counter()
    serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=SEED)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = PoolRunner(PoolConfig(n_workers=2)).run(
        blocks, SCHEDULE, seed=SEED
    )
    pooled_s = time.perf_counter() - t0

    assert_bit_identical(serial, pooled)

    bare_s, journal_s, combined_s = journal_overhead(tmp_path)
    overhead = journal_s / bare_s
    ckpt_s = checkpoint_write_cost(tmp_path, serial)

    n_obs = STREAM_BLOCKS * int(STREAM_DAYS * DAY / ROUND)
    lines = [
        f"{'workload':<34} {'metric':>18} {'value':>12}",
        f"{'batch ' + str(N_BLOCKS) + ' blocks, serial':<34} "
        f"{'wall s':>18} {serial_s:>12.3f}",
        f"{'batch ' + str(N_BLOCKS) + ' blocks, pool x2':<34} "
        f"{'wall s':>18} {pooled_s:>12.3f}",
        f"{'pool speedup (serial/pool)':<34} {'ratio':>18} "
        f"{serial_s / pooled_s:>12.2f}",
        f"{'pooled result':<34} {'bit-identical':>18} {'yes':>12}",
        f"{'stream ingest, bare':<34} {'wall s':>18} {bare_s:>12.3f}",
        f"{'journal appends alone':<34} {'wall s':>18} {journal_s:>12.3f}",
        f"{'stream ingest, journaled':<34} {'wall s':>18} "
        f"{combined_s:>12.3f}",
        f"{'journal overhead':<34} {'fraction':>18} {overhead:>12.3f}",
        f"{'journal observations':<34} {'count':>18} {n_obs:>12d}",
        f"{'atomic checkpoint write':<34} {'s/flush':>18} {ckpt_s:>12.4f}",
    ]
    record_output("abl_pool_runner", "\n".join(lines))

    # Durability must be cheap enough to leave on everywhere.
    assert overhead < 0.10, (
        f"journal overhead {overhead:.1%} exceeds the 10% budget"
    )

"""Figure 7: detection accuracy versus number of diurnal addresses.

Paper: with 50 always-on addresses, accuracy climbs quickly with n_d and
exceeds ~85% once 10+ addresses (17% of responders) are diurnal; misses
at small n_d happen because stop-on-first-positive probing usually hits a
stable address first.
"""

from repro.analysis import run_sensitivity_sweep


def test_fig07_nd_sweep(benchmark, record_output):
    sweep = benchmark.pedantic(
        run_sensitivity_sweep,
        args=("fig7_nd",),
        kwargs=dict(n_batches=3, experiments_per_batch=12, days=14.0, seed=7),
        rounds=1,
        iterations=1,
    )
    record_output("fig07_nd_sweep", sweep.format_series())

    by_value = {p.value: p.median for p in sweep.points}
    # Nearly invisible with a single diurnal address.
    assert by_value[1] < 0.5
    # Paper: >85% beyond ~10 diurnal addresses.
    assert by_value[20] > 0.8
    assert by_value[100] == 1.0
    # Monotone trend (allowing small batch noise).
    medians = sweep.medians()
    assert medians[-1] >= medians[0]
    assert all(b >= a - 0.15 for a, b in zip(medians, medians[1:]))

"""Ablation: the cost of replication, and availability under a kill.

Replication buys availability with extra write work: R=2 journals
every observation twice and fans each ingest batch to both replicas.
The fan-out is dispatched in parallel, so the steady-state price must
be bounded — R=2 ingest throughput at or above **0.5×** the R=1
baseline on the same shard fleet (the serialization bound; parallel
dispatch should land well above it on multi-core machines).

The second measurement is what the extra work buys: a sustained R=2
ingest with one shard SIGKILLed mid-stream must complete with **zero**
failed writes and zero failed reads of the dead shard's keys — the
"zero 5xx" availability criterion.  Both numbers land in
``BENCH_trajectory.json`` (the error count with a sub-1 baseline, so
any 5xx at all is a CI regression) and ``abl_replication.json`` is
uploaded as a CI artifact.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.serve import ServiceConfig, ServiceRunner
from repro.stream.engine import StreamConfig

RESULTS_DIR = Path(__file__).parent / "results"

ROUND = 3600.0
DAY = 86400.0
WINDOW = 24
N_BLOCKS = 96
N_ROUNDS = 96  # 4 days per block
N_SHARDS = 2
SEED = 31
BATCH = 4096


def workload() -> list:
    """One fleet, identical across replication levels, arrival order."""
    rng = np.random.default_rng(SEED)
    times = np.arange(N_ROUNDS) * ROUND
    observations = []
    phases = rng.uniform(0.0, 2.0 * np.pi, N_BLOCKS)
    for block_id in range(N_BLOCKS):
        values = (
            0.5
            + 0.4 * np.sin(2.0 * np.pi * times / DAY + phases[block_id])
            + 0.02 * rng.standard_normal(N_ROUNDS)
        )
        observations.extend(
            (block_id, float(times[r]), float(values[r]))
            for r in range(N_ROUNDS)
        )
    observations.sort(key=lambda triple: (triple[1], triple[0]))
    return observations


def make_runner(replication: int, tmp_dir: Path, tag: str) -> ServiceRunner:
    config = ServiceConfig(
        stream=StreamConfig(window_rounds=WINDOW, round_s=ROUND),
        journal_dir=tmp_dir / f"journals-{tag}",
        n_shards=N_SHARDS,
        replication=replication,
        seed=SEED,
    )
    return ServiceRunner(config)


def run_steady_state(replication: int, observations: list, tmp_dir) -> dict:
    runner = make_runner(replication, tmp_dir, f"r{replication}")
    runner.start()
    try:
        t0 = time.perf_counter()
        accepted = 0
        for start in range(0, len(observations), BATCH):
            report = runner.ingest(observations[start:start + BATCH])
            accepted += report["accepted"]
        runner.flush()
        ingest_s = time.perf_counter() - t0
        assert accepted == len(observations), (accepted, len(observations))
        return {
            "replication": replication,
            "observations": accepted,
            "ingest_s": ingest_s,
            "obs_per_s": accepted / ingest_s,
        }
    finally:
        runner.stop(drain=False)


def run_chaos(observations: list, tmp_dir) -> dict:
    """R=2 ingest with one SIGKILL mid-stream; count every error."""
    runner = make_runner(2, tmp_dir, "chaos")
    runner.start()
    try:
        batches = [
            observations[start:start + BATCH]
            for start in range(0, len(observations), BATCH)
        ]
        kill_at = max(1, len(batches) // 2)
        victim = runner.owner(0)
        write_errors = 0
        read_errors = 0
        degraded_batches = 0
        accepted = 0
        for i, batch in enumerate(batches):
            if i == kill_at:
                runner.kill_shard(victim)
            report = runner.ingest(batch)
            accepted += report["accepted"]
            write_errors += report["rejected"]
            degraded_batches += int(report["degraded"])
            # Reads of the killed shard's keys must keep answering.
            try:
                if runner.query_block(0) is None:
                    read_errors += 1
            except Exception:
                read_errors += 1
        rejoined = runner.wait_healthy(timeout_s=60.0)
        return {
            "observations": accepted,
            "write_errors": write_errors,
            "read_errors": read_errors,
            "errors": write_errors + read_errors,
            "degraded_batches": degraded_batches,
            "rejoined": rejoined,
            "hint_backlog": runner.fleet_snapshot()["hint_backlog"],
        }
    finally:
        runner.stop(drain=False)


def test_replication_cost_and_availability(tmp_path, trajectory):
    observations = workload()
    r1 = run_steady_state(1, observations, tmp_path)
    r2 = run_steady_state(2, observations, tmp_path)
    chaos = run_chaos(observations, tmp_path)
    ratio = r2["obs_per_s"] / r1["obs_per_s"]

    lines = [f"{'R':>3} {'obs/s':>10} {'vs R=1':>8}"]
    for level in (r1, r2):
        lines.append(
            f"{level['replication']:>3} {level['obs_per_s']:>10.0f} "
            f"{level['obs_per_s'] / r1['obs_per_s']:>8.2f}"
        )
    lines.append(
        f"chaos: {chaos['observations']} obs, "
        f"{chaos['errors']} errors, rejoined={chaos['rejoined']}"
    )
    table = "\n".join(lines)
    print(f"\n=== abl_replication ===\n{table}")

    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "workload": {
            "n_blocks": N_BLOCKS,
            "n_rounds": N_ROUNDS,
            "round_s": ROUND,
            "n_shards": N_SHARDS,
            "seed": SEED,
        },
        "cpu_count": os.cpu_count(),
        "levels": [r1, r2],
        "ratio_r2_vs_r1": ratio,
        "chaos": chaos,
    }
    (RESULTS_DIR / "abl_replication.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    trajectory.record(
        "abl_replication", "obs_per_s_r1",
        r1["obs_per_s"], unit="obs/s", kind="throughput",
    )
    trajectory.record(
        "abl_replication", "obs_per_s_r2",
        r2["obs_per_s"], unit="obs/s", kind="throughput",
    )
    trajectory.record(
        "abl_replication", "r2_vs_r1_ratio",
        ratio, unit="x", kind="throughput",
    )
    # Sub-1 baseline: any 5xx during the chaos run is a CI regression.
    trajectory.record(
        "abl_replication", "chaos_5xx_errors",
        chaos["errors"], unit="errors", kind="latency",
    )

    # Availability: the kill must be error-free and fully healed.
    assert chaos["write_errors"] == 0, chaos
    assert chaos["read_errors"] == 0, chaos
    assert chaos["degraded_batches"] >= 1, chaos  # the kill was observed
    assert chaos["rejoined"], chaos
    assert chaos["hint_backlog"] == 0, chaos

    # Cost: R=2 at or above the 0.5x serialization bound.  On a
    # single-core runner the parallel fan-out serializes and the bound
    # itself is noise, so the hard assert arms at 2+ CPUs.
    assert r1["obs_per_s"] > 0 and r2["obs_per_s"] > 0
    if (os.cpu_count() or 1) >= 2:
        assert ratio >= 0.5, (ratio, r1["obs_per_s"], r2["obs_per_s"])

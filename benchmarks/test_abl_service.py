"""Ablation: service ingest throughput and query latency vs shard count.

The sharded service's reason to exist is horizontal scale: with the
engine work spread over N worker processes, ingest throughput should
grow with N (machine permitting) while per-block query latency stays
flat — the ring adds an O(log n) lookup, not a scan.

For each shard count (1/2/4) the run starts a full service (shard
processes, journals, supervision), streams an identical synthetic
fleet through :meth:`ServiceRunner.ingest`, then times a burst of
:meth:`ServiceRunner.query_block` calls.  Results (observations/sec,
query p50/p99) are written to ``abl_service.json`` so the CI service
job uploads the measured numbers as an artifact.

The throughput-scaling assertion only arms on machines with at least
4 CPUs — on a single-core runner every shard count serializes onto
the same core and the comparison is noise.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.serve import ServiceConfig, ServiceRunner
from repro.stream.engine import StreamConfig

RESULTS_DIR = Path(__file__).parent / "results"

ROUND = 3600.0
DAY = 86400.0
WINDOW = 24
N_BLOCKS = 96
N_ROUNDS = 96  # 4 days per block
N_QUERIES = 300
SHARD_COUNTS = (1, 2, 4)
SEED = 23
BATCH = 4096


def workload() -> list:
    """One fleet, identical across shard counts, in arrival order."""
    rng = np.random.default_rng(SEED)
    times = np.arange(N_ROUNDS) * ROUND
    observations = []
    phases = rng.uniform(0.0, 2.0 * np.pi, N_BLOCKS)
    for block_id in range(N_BLOCKS):
        values = (
            0.5
            + 0.4 * np.sin(2.0 * np.pi * times / DAY + phases[block_id])
            + 0.02 * rng.standard_normal(N_ROUNDS)
        )
        observations.extend(
            (block_id, float(times[r]), float(values[r]))
            for r in range(N_ROUNDS)
        )
    observations.sort(key=lambda triple: (triple[1], triple[0]))
    return observations


def run_level(n_shards: int, observations: list, tmp_dir: Path) -> dict:
    config = ServiceConfig(
        stream=StreamConfig(window_rounds=WINDOW, round_s=ROUND),
        journal_dir=tmp_dir / f"journals-{n_shards}",
        n_shards=n_shards,
        seed=SEED,
    )
    runner = ServiceRunner(config)
    runner.start()
    try:
        t0 = time.perf_counter()
        accepted = 0
        for start in range(0, len(observations), BATCH):
            report = runner.ingest(observations[start:start + BATCH])
            accepted += report["accepted"]
        runner.flush()
        ingest_s = time.perf_counter() - t0
        assert accepted == len(observations), (accepted, len(observations))

        rng = np.random.default_rng(SEED + n_shards)
        targets = rng.integers(0, N_BLOCKS, N_QUERIES)
        latencies = np.empty(N_QUERIES)
        for i, block_id in enumerate(targets):
            q0 = time.perf_counter()
            snapshot = runner.query_block(int(block_id))
            latencies[i] = time.perf_counter() - q0
            assert snapshot is not None and snapshot["n_closed"] >= 1
        return {
            "n_shards": n_shards,
            "observations": accepted,
            "ingest_s": ingest_s,
            "obs_per_s": accepted / ingest_s,
            "query_p50_ms": float(np.percentile(latencies, 50)) * 1e3,
            "query_p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        }
    finally:
        runner.stop(drain=False)


def test_service_shard_scaling(tmp_path, trajectory):
    observations = workload()
    levels = [run_level(n, observations, tmp_path) for n in SHARD_COUNTS]

    lines = [
        f"{'shards':>6} {'obs/s':>10} {'p50 ms':>8} {'p99 ms':>8}"
    ]
    for level in levels:
        lines.append(
            f"{level['n_shards']:>6} {level['obs_per_s']:>10.0f} "
            f"{level['query_p50_ms']:>8.2f} {level['query_p99_ms']:>8.2f}"
        )
    table = "\n".join(lines)
    print(f"\n=== abl_service ===\n{table}")

    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "workload": {
            "n_blocks": N_BLOCKS,
            "n_rounds": N_ROUNDS,
            "round_s": ROUND,
            "n_queries": N_QUERIES,
            "seed": SEED,
        },
        "cpu_count": os.cpu_count(),
        "levels": levels,
    }
    (RESULTS_DIR / "abl_service.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    for level in levels:
        trajectory.record(
            "abl_service", f"obs_per_s_{level['n_shards']}shard",
            level["obs_per_s"], unit="obs/s", kind="throughput",
        )
        trajectory.record(
            "abl_service", f"query_p99_ms_{level['n_shards']}shard",
            level["query_p99_ms"], unit="ms", kind="latency",
        )

    by_shards = {level["n_shards"]: level for level in levels}
    for level in levels:
        assert level["obs_per_s"] > 0
        # Generous sanity ceiling: a per-block pipe query is local IPC,
        # not a network hop; seconds would mean a wedged shard.
        assert level["query_p99_ms"] < 1000.0, level
    if (os.cpu_count() or 1) >= 4:
        # The acceptance criterion proper: engine work dominates and
        # spreads across cores, so 4 shards must beat 1.
        assert by_shards[4]["obs_per_s"] >= 1.1 * by_shards[1]["obs_per_s"], (
            by_shards[4]["obs_per_s"], by_shards[1]["obs_per_s"]
        )

"""Ablation: streaming engine versus batch classification.

Two claims carry the streaming subsystem.  **Parity**: every window the
engine closes must produce a report bit-identical to the batch path
(`clean_observations` + `classify_series`) over the same observations —
on clean streams and on streams degraded by the fault injectors.
**Cost**: maintaining the spectral state incrementally (sliding DFT at
the tracked bins) must beat re-running the batch classifier per round,
since that O(tracked bins) recurrence is the engine's reason to exist.

The table reports window counts with parity tallies and the per-round
cost of three strategies: streaming ingestion (ring + sliding DFT +
closes), a naive full rfft of the trailing window every round, and a
naive full reclassification every round.
"""

import time
from pathlib import Path

import numpy as np

from repro.core.classify import classify_series, reports_equal
from repro.faults import FaultConfig
from repro.faults.plan import FaultPlan
from repro.obs import MetricsRegistry, write_json_snapshot
from repro.stream import (
    ListSink,
    StreamConfig,
    StreamEngine,
    WindowClosed,
    batch_window_report,
)

RESULTS_DIR = Path(__file__).parent / "results"

N_BLOCKS = 12
N_DAYS = 10
SEED = 33
ROUND = 660.0
DAY = 86400.0

FAULTS = FaultConfig(
    round_drop_rate=0.05,
    round_duplicate_rate=0.05,
    gaps_per_day=1.0,
    clock_jitter_s=60.0,
    seed=7,
)


def population():
    """Synthetic per-round streams: two diurnal blocks to one flat."""
    rng = np.random.default_rng(SEED)
    n = int(N_DAYS * DAY / ROUND)
    times = np.arange(n) * ROUND
    streams = {}
    for block in range(N_BLOCKS):
        if block % 3 == 2:
            values = 0.5 + 0.03 * rng.standard_normal(n)
        else:
            amplitude = rng.uniform(0.2, 0.45)
            phase = rng.uniform(0, 2 * np.pi)
            values = (
                0.5
                + amplitude * np.sin(2 * np.pi * times / DAY + phase)
                + 0.02 * rng.standard_normal(n)
            )
        streams[block] = (times, values)
    return streams


def degrade(streams):
    plan = FaultPlan(FAULTS)
    return {
        block: plan.for_block(block).degrade_stream(t, v, ROUND)
        for block, (t, v) in streams.items()
    }


def parity_tally(streams, config, metrics=None):
    """(windows closed, windows whose report+quality match the oracle)."""
    n_windows = n_equal = 0
    for block, (times, values) in streams.items():
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink], metrics=metrics)
        engine.ingest_many(block, times, values)
        engine.flush()
        for event in sink.of_type(WindowClosed):
            n_windows += 1
            want, want_quality = batch_window_report(
                times, values, event.window_start_round, event.n_rounds,
                config,
            )
            if reports_equal(event.report, want) and event.quality == want_quality:
                n_equal += 1
    return n_windows, n_equal


def per_round_costs(config, times, values):
    """µs/round for streaming ingest vs naive per-round recomputation."""
    n = config.window_rounds

    engine = StreamEngine(config)
    t0 = time.perf_counter()
    engine.ingest_many(0, times, values)
    engine.flush()
    stream_us = (time.perf_counter() - t0) / len(times) * 1e6

    # Naive per-round rfft of the trailing window (amplitude refresh only).
    t0 = time.perf_counter()
    for r in range(n, len(values)):
        np.abs(np.fft.rfft(values[r - n + 1: r + 1]))
    rfft_us = (time.perf_counter() - t0) / (len(values) - n) * 1e6

    # Naive per-round full reclassification, on a subsample for runtime.
    sample = range(n, len(values), 10)
    t0 = time.perf_counter()
    for r in sample:
        classify_series(values[r - n + 1: r + 1], config.round_s,
                        config.classifier)
    reclass_us = (time.perf_counter() - t0) / len(sample) * 1e6

    return stream_us, rfft_us, reclass_us


def run_ablation():
    config = StreamConfig.for_days(2.0, hop_days=1.0, label_dwell=1)
    clean = population()
    faulted = degrade(clean)

    # One registry across every engine run: the exported snapshot is the
    # campaign-level telemetry CI uploads as an artifact.
    registry = MetricsRegistry()
    clean_tally = parity_tally(clean, config, metrics=registry)
    faulted_tally = parity_tally(faulted, config, metrics=registry)
    costs = per_round_costs(config, *clean[0])
    return clean_tally, faulted_tally, costs, registry


def test_abl_streaming_parity(benchmark, record_output, trajectory):
    clean_tally, faulted_tally, costs, registry = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    stream_us, rfft_us, reclass_us = costs

    RESULTS_DIR.mkdir(exist_ok=True)
    write_json_snapshot(
        RESULTS_DIR / "abl_streaming_parity_metrics.json", registry
    )

    lines = [f"{'streams':>10}{'windows':>9}{'parity':>9}"]
    for name, (n_windows, n_equal) in (
        ("clean", clean_tally),
        ("faulted", faulted_tally),
    ):
        lines.append(f"{name:>10}{n_windows:>9}{f'{n_equal}/{n_windows}':>9}")
    lines.append("")
    lines.append(f"{'per-round strategy':>26}{'us/round':>10}{'rounds/s':>12}")
    for name, us in (
        ("streaming ingest", stream_us),
        ("naive rfft", rfft_us),
        ("naive reclassify", reclass_us),
    ):
        lines.append(f"{name:>26}{us:>10.1f}{1e6 / us:>12.0f}")
    lines.append("")
    lines.append(f"speedup vs naive reclassify: {reclass_us / stream_us:.1f}x")
    record_output("abl_streaming_parity", "\n".join(lines))
    trajectory.record(
        "abl_streaming_parity", "stream_rounds_per_s",
        1e6 / stream_us, unit="rounds/s", kind="throughput",
    )
    trajectory.record(
        "abl_streaming_parity", "reclassify_speedup",
        reclass_us / stream_us, unit="x", kind="ratio",
    )

    # Parity is exact, not approximate: every window, clean and faulted.
    assert clean_tally[0] > 0 and clean_tally[1] == clean_tally[0]
    assert faulted_tally[0] > 0 and faulted_tally[1] == faulted_tally[0]
    # The incremental path must clearly beat per-round reclassification.
    assert stream_us < reclass_us / 2, (
        f"streaming {stream_us:.1f}us/round vs reclassify "
        f"{reclass_us:.1f}us/round"
    )

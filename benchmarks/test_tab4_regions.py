"""Table 4: fraction of diurnal blocks grouped by region.

Paper ordering (ascending): Northern America 0.002, Southern Africa /
Western Europe / Northern Europe ~0.011-0.013, ..., South America 0.208,
South-Eastern Asia 0.219, Eastern Asia 0.279, Central Asia 0.401.
"""

from repro.analysis import run_region_table

# The paper's Table 4 values for comparison.
PAPER = {
    "Northern America": 0.002,
    "Southern Africa": 0.0108,
    "Western Europe": 0.0109,
    "Northern Europe": 0.0131,
    "Caribbean": 0.016,
    "Oceania": 0.0349,
    "Western Asia": 0.0765,
    "Northern Africa": 0.0992,
    "Southern Europe": 0.124,
    "Central America": 0.133,
    "Eastern Europe": 0.135,
    "Southern Asia": 0.200,
    "South America": 0.208,
    "South-Eastern Asia": 0.219,
    "Eastern Asia": 0.279,
    "Central Asia": 0.401,
}


def test_tab4_regions(benchmark, record_output, global_study):
    table = benchmark.pedantic(
        run_region_table, kwargs=dict(study=global_study), rounds=1, iterations=1
    )
    lines = [table.format_table(), "", "paper comparison:"]
    for row in table.sorted_rows():
        lines.append(
            f"  {row.region:<22} measured={row.fraction_diurnal:.4f} "
            f"paper={PAPER[row.region]:.4f}"
        )
    record_output("tab4_regions", "\n".join(lines))

    # The extremes must match the paper.
    assert table.row_of("Northern America").fraction_diurnal < 0.02
    assert table.row_of("Western Europe").fraction_diurnal < 0.04
    assert table.row_of("Eastern Asia").fraction_diurnal > 0.2
    # Well-populated regions track the paper's values.
    for row in table.rows:
        if row.blocks >= 400:
            assert abs(row.fraction_diurnal - PAPER[row.region]) < 0.09, row.region
    # Rank order: the top (most diurnal) regions are Asian/South American.
    top3 = {r.region for r in table.sorted_rows()[-3:]}
    assert top3 <= {
        "Central Asia", "Eastern Asia", "South-Eastern Asia",
        "South America", "Southern Asia",
    }

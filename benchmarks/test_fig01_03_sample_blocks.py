"""Figures 1-3: sample blocks through the full pipeline.

The paper illustrates three archetypes: a sparse high-availability block
(1.9.21/24, 42 addresses, A=0.735, with an outage at round 957), a dense
low-availability block (93.208.233/24, 245 addresses, A=0.191, ~5.08
probes/round), and a diurnal block (27.186.9/24).  This bench builds each
archetype, runs survey + adaptive measurement, and reports the quantities
each figure annotates.
"""

import numpy as np
import pytest

from repro.core import DiurnalClass, measure_block
from repro.net import (
    Block24,
    Outage,
    make_always_on,
    make_dead,
    make_diurnal,
    make_dynamic_pool,
    merge_behaviors,
    parse_block,
)
from repro.probing import RoundSchedule

SCHEDULE = RoundSchedule.for_days(14)


def build_fig1_block():
    behavior = merge_behaviors(
        make_always_on(42, p_response=0.735), make_dead(214)
    )
    outage = Outage(957 * 660.0, 975 * 660.0)
    return Block24(parse_block("1.9.21/24"), behavior, [outage])


def build_fig2_block():
    behavior = merge_behaviors(
        make_dynamic_pool(245, mean_up_s=2 * 3600, mean_down_s=8.4 * 3600),
        make_dead(11),
    )
    return Block24(parse_block("93.208.233/24"), behavior)


def build_fig3_block():
    behavior = merge_behaviors(
        make_always_on(60, p_response=0.9),
        make_diurnal(150, phase_s=8 * 3600.0, uptime_s=9 * 3600.0,
                     sigma_start_s=1800.0),
        make_dead(46),
    )
    return Block24(parse_block("27.186.9/24"), behavior)


def measure_all():
    rows = []
    for name, block, seed in (
        ("fig1 sparse/high-A", build_fig1_block(), 1),
        ("fig2 dense/low-A", build_fig2_block(), 2),
        ("fig3 diurnal", build_fig3_block(), 3),
    ):
        result = measure_block(block, SCHEDULE, np.random.default_rng(seed))
        rows.append((name, block, result))
    return rows


def test_fig01_03_sample_blocks(benchmark, record_output):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    lines = [
        f"{'case':<20}{'|E(b)|':>7}{'mean A':>8}{'probes/rnd':>11}"
        f"{'A_o<=A':>8}{'label':>13}{'outages':>9}"
    ]
    by_name = {}
    for name, block, result in rows:
        outages = (result.states == -1).any()
        lines.append(
            f"{name:<20}{result.n_ever_active:>7}"
            f"{result.mean_true_availability:>8.3f}"
            f"{result.mean_probes_per_round():>11.2f}"
            f"{result.underestimate_fraction():>8.1%}"
            f"{result.report.label.value:>13}"
            f"{'yes' if outages else 'no':>9}"
        )
        by_name[name] = result
    record_output("fig01_03_sample_blocks", "\n".join(lines))

    fig1 = by_name["fig1 sparse/high-A"]
    fig2 = by_name["fig2 dense/low-A"]
    fig3 = by_name["fig3 diurnal"]

    # Figure 1: sparse but high availability; outage detected near 957.
    assert fig1.mean_true_availability == pytest.approx(0.72, abs=0.05)
    assert fig1.report.label is DiurnalClass.NON_DIURNAL
    assert (fig1.states[957:990] == -1).any()
    # Figure 2: low availability costs ~5 probes/round (paper: 5.08).
    assert fig2.mean_true_availability == pytest.approx(0.19, abs=0.04)
    assert 3.5 < fig2.mean_probes_per_round() < 7.0
    assert fig2.report.label is DiurnalClass.NON_DIURNAL
    # Figure 3: diurnal with 14 daily bumps -> strict, and conservative
    # operational estimate throughout.
    assert fig3.report.label is DiurnalClass.STRICT
    assert fig3.underestimate_fraction() > 0.9
    # All three stay under the paper's probing budget.
    for result in (fig1, fig2, fig3):
        assert result.probe_rate_per_hour() < 35

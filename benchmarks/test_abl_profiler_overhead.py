"""Ablation: cost of the sampling profiler on the streaming hot path.

The :class:`~repro.obs.SamplingProfiler` earns its place in a running
service only if leaving it on is cheap: a background thread waking
every ``interval_s`` to snapshot ``sys._current_frames`` must cost the
profiled workload less than 5% wall time — the same budget the metrics
registry and event logger honour, measured the same way (best-of-N
interleaved off/on pairs, so both sides of each pair share the
machine's load phase).

The run also sanity-checks the output: the profile taken *while the
engine ingests* must actually contain engine frames, or the sampler is
cheap because it is blind.
"""

import time
from pathlib import Path

import numpy as np

from repro.obs import SamplingProfiler
from repro.stream import StreamConfig, StreamEngine

RESULTS_DIR = Path(__file__).parent / "results"

N_BLOCKS = 4
N_DAYS = 10
SEED = 55
ROUND = 660.0
DAY = 86400.0
REPS = 7
MAX_OVERHEAD = 0.05
INTERVAL_S = 0.005


def workload():
    rng = np.random.default_rng(SEED)
    n = int(N_DAYS * DAY / ROUND)
    times = np.arange(n) * ROUND
    values = (
        0.5
        + 0.4 * np.sin(2 * np.pi * times / DAY)
        + 0.02 * rng.standard_normal(n)
    )
    return times, values


def run_engine(config, times, values):
    engine = StreamEngine(config)
    t0 = time.perf_counter()
    for block in range(N_BLOCKS):
        engine.ingest_many(block, times, values)
    engine.flush()
    return time.perf_counter() - t0


def run_pairs(config, times, values):
    """Back-to-back (unprofiled, profiled) timing pairs."""
    pairs = []
    profiler = None
    for _ in range(REPS):
        t_off = run_engine(config, times, values)
        profiler = SamplingProfiler(interval_s=INTERVAL_S)
        with profiler:
            t_on = run_engine(config, times, values)
        pairs.append((t_off, t_on))
    return pairs, profiler


def run_ablation():
    config = StreamConfig.for_days(2.0, hop_days=1.0, label_dwell=1)
    times, values = workload()
    run_engine(config, times, values)  # warm both paths
    return run_pairs(config, times, values)


def test_abl_profiler_overhead(benchmark, record_output, trajectory):
    pairs, profiler = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    t_off = min(t for t, _ in pairs)
    t_on = min(t for _, t in pairs)
    overhead = min(t_p / t_n for t_n, t_p in pairs) - 1.0
    n_rounds = N_BLOCKS * int(N_DAYS * DAY / ROUND)

    collapsed = profiler.collapsed()
    lines = [
        f"{'path':>16}{'wall ms':>10}{'us/round':>10}",
        f"{'profiler off':>16}{t_off * 1e3:>10.1f}"
        f"{t_off / n_rounds * 1e6:>10.2f}",
        f"{'profiler on':>16}{t_on * 1e3:>10.1f}"
        f"{t_on / n_rounds * 1e6:>10.2f}",
        "",
        f"overhead: {overhead:+.2%} (budget {MAX_OVERHEAD:.0%}, "
        f"best of {REPS}, interval {INTERVAL_S * 1e3:.0f}ms)",
        f"samples: {profiler.n_samples}, "
        f"unique stacks: {len(profiler.counts())}",
    ]
    record_output("abl_profiler_overhead", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "abl_profiler_overhead.collapsed").write_text(
        collapsed + "\n"
    )
    trajectory.record(
        "abl_profiler_overhead", "profiler_overhead",
        overhead, unit="fraction", kind="ratio",
    )

    # The sampler watched the run, not an idle process: the final
    # profiled rep lasted many intervals, and its hottest stacks must
    # include the engine's ingest path.
    assert profiler.n_samples > 0
    assert "engine.py" in collapsed, collapsed[:400]
    # ...and watching cost less than the budget.
    assert overhead < MAX_OVERHEAD, (
        f"profiler overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%}: "
        f"off {t_off * 1e3:.1f}ms, on {t_on * 1e3:.1f}ms"
    )

"""Table 5: ANOVA of diurnalness against five country-level factors.

Paper: per-capita GDP dominates (p = 6.61e-8); mean allocation age is
significant alone (p = 0.031) and electricity x mean-allocation-age as an
interaction (p = 0.0015); the remaining singles/pairs are not significant.

Known divergence (documented in EXPERIMENTS.md): with the synthetic
covariate table, electricity is a cleaner GDP proxy than the CIA data, so
it reaches significance alone while its interaction with allocation age
does not.  The headline — GDP dominant, allocation age secondary — holds.
"""

from repro.analysis import run_country_table, run_economics_anova


def test_tab5_anova(benchmark, record_output, global_study):
    def run():
        table = run_country_table(study=global_study, min_blocks=30)
        return run_economics_anova(table=table)

    anova = benchmark.pedantic(run, rounds=1, iterations=1)
    record_output("tab5_anova", anova.format_table())

    # GDP is the dominant factor, far below any threshold (paper: 6.61e-8).
    assert anova.gdp_dominant()
    assert anova.p_of("gdp") < 1e-5
    # Mean allocation age is significant-to-borderline alone (paper: 0.031;
    # our country sample is smaller, so the cell hovers around 0.05).
    assert anova.p_of("mean_alloc_age") < 0.08
    # Users-per-host is not significant alone, matching the paper's
    # diagonal; first-allocation age stays weaker than GDP by orders of
    # magnitude.
    assert anova.p_of("users_per_host") > 0.05
    assert anova.p_of("first_alloc_age") > 0.02
    assert anova.p_of("first_alloc_age") > 100 * anova.p_of("gdp")

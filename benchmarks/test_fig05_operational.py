"""Figure 5: the operational estimate Â_o (almost) never overestimates.

Paper: Â_o stays at or below true A in ~94% of comparable rounds (cases
with A below the 0.1 probing floor are omitted).
"""


from repro.analysis import run_availability_validation


def test_fig05_operational(benchmark, record_output):
    result = benchmark.pedantic(
        run_availability_validation,
        kwargs=dict(n_blocks=120, seed=5),
        rounds=1,
        iterations=1,
    )
    bq = result.operational_quartiles()
    lines = [
        f"P(A_o <= A) = {result.underestimate_fraction():.3f} (paper: ~0.94)",
        "",
        f"{'A bin':>8}{'count':>10}{'q1':>8}{'median':>8}{'q3':>8}",
    ]
    for i in range(len(bq.bin_centers)):
        if bq.counts[i] == 0:
            continue
        lines.append(
            f"{bq.bin_centers[i]:>8.2f}{bq.counts[i]:>10d}"
            f"{bq.q1[i]:>8.3f}{bq.median[i]:>8.3f}{bq.q3[i]:>8.3f}"
        )
    record_output("fig05_operational", "\n".join(lines))

    assert result.underestimate_fraction() > 0.90
    # The conservative margin shows as medians below the diagonal for
    # well-populated bins above the floor.
    valid = (bq.counts > 500) & (bq.bin_centers > 0.25)
    assert (bq.median[valid] < bq.bin_centers[valid]).mean() > 0.85

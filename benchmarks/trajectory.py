"""Perf trajectory: a cumulative, normalized benchmark history.

Each ablation that measures something worth defending appends
normalized records — ``{bench, metric, value, unit, kind, git_rev,
recorded_at}`` — to ``benchmarks/results/BENCH_trajectory.json`` via
the session-scoped ``trajectory`` fixture.  The file is cumulative
across runs, so plotting it shows how throughput and latency moved
across commits, not just whether today's run passed.

``python -m benchmarks.trajectory --check`` is the CI regression gate:
it compares the *latest* record of every metric named in the committed
``benchmarks/BENCH_baseline.json`` against that baseline and fails on
a >20% regression — lower for ``kind: throughput`` metrics, higher for
``kind: latency`` ones.  Metrics in the trajectory but not the
baseline are informational (new measurements need a baseline commit to
become load-bearing); baseline metrics missing from the trajectory
warn rather than fail, because partial benchmark runs are legitimate.

Baselines are set deliberately conservative (well below measured local
throughput, well above measured latency) so the gate catches
regressions in kind — an accidental O(n²), a lock on the hot path —
without flaking on shared-runner noise.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "BASELINE_PATH",
    "MAX_REGRESSION",
    "TRAJECTORY_PATH",
    "TrajectoryRecorder",
    "check_against_baseline",
    "git_rev",
    "latest_by_metric",
    "load_records",
]

_BENCH_DIR = Path(__file__).resolve().parent
TRAJECTORY_PATH = _BENCH_DIR / "results" / "BENCH_trajectory.json"
BASELINE_PATH = _BENCH_DIR / "BENCH_baseline.json"
MAX_REGRESSION = 0.20

_KINDS = ("throughput", "latency", "ratio")


def git_rev() -> str:
    """The current short commit hash, or ``unknown`` outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_BENCH_DIR,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = result.stdout.strip()
    return rev if result.returncode == 0 and rev else "unknown"


class TrajectoryRecorder:
    """Buffer normalized benchmark records; append them on flush.

    One recorder serves a whole benchmark session (see the
    ``trajectory`` fixture in ``benchmarks/conftest.py``): records
    accumulate in memory and land in the cumulative JSON file once, at
    teardown, so a crashed benchmark never leaves a half-written file
    and concurrent tests never interleave writes.
    """

    def __init__(self, path: str | Path = TRAJECTORY_PATH) -> None:
        self.path = Path(path)
        self.records: list[dict] = []
        self._rev = git_rev()

    def record(
        self,
        bench: str,
        metric: str,
        value: float,
        unit: str = "",
        kind: str = "throughput",
    ) -> dict:
        """Queue one measurement.  ``kind`` sets regression polarity:
        ``throughput`` regresses downward, ``latency`` upward,
        ``ratio`` is informational only."""
        if kind not in _KINDS:
            raise ValueError(f"unknown kind {kind!r}; expected one of {_KINDS}")
        entry = {
            "bench": str(bench),
            "metric": str(metric),
            "value": float(value),
            "unit": str(unit),
            "kind": kind,
            "git_rev": self._rev,
            "recorded_at": time.time(),
        }
        self.records.append(entry)
        return entry

    def flush(self) -> Path | None:
        """Append queued records to the cumulative trajectory file."""
        if not self.records:
            return None
        existing = load_records(self.path)
        payload = {"records": existing + self.records}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
        self.records = []
        return self.path


def load_records(path: str | Path = TRAJECTORY_PATH) -> list[dict]:
    """The trajectory's records; [] for a missing or unreadable file."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    records = payload.get("records", []) if isinstance(payload, dict) else []
    return [r for r in records if isinstance(r, dict)]


def latest_by_metric(records: list[dict]) -> dict[str, dict]:
    """The last-recorded entry per ``bench/metric`` key, in file order."""
    latest: dict[str, dict] = {}
    for record in records:
        key = f"{record.get('bench')}/{record.get('metric')}"
        latest[key] = record
    return latest


def check_against_baseline(
    trajectory_path: str | Path = TRAJECTORY_PATH,
    baseline_path: str | Path = BASELINE_PATH,
    max_regression: float = MAX_REGRESSION,
) -> tuple[list[str], list[str]]:
    """Compare the latest trajectory records against the baseline.

    Returns ``(failures, warnings)``: failures are >20% regressions on
    baseline metrics; warnings cover baseline metrics the trajectory
    has no record for (partial runs) and malformed entries.
    """
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        return [f"baseline file missing: {baseline_path}"], []
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as error:
        return [f"baseline file unreadable: {error}"], []
    metrics = baseline.get("metrics", {})
    latest = latest_by_metric(load_records(trajectory_path))
    failures: list[str] = []
    warnings: list[str] = []
    for key, expect in sorted(metrics.items()):
        kind = expect.get("kind", "throughput")
        base_value = float(expect.get("value", 0.0))
        record = latest.get(key)
        if record is None:
            warnings.append(f"{key}: no trajectory record (benchmark not run)")
            continue
        value = float(record.get("value", 0.0))
        if kind == "throughput":
            floor = base_value * (1.0 - max_regression)
            if value < floor:
                failures.append(
                    f"{key}: throughput {value:.1f} is below "
                    f"{floor:.1f} ({max_regression:.0%} under baseline "
                    f"{base_value:.1f})"
                )
        elif kind == "latency":
            ceiling = base_value * (1.0 + max_regression)
            if value > ceiling:
                failures.append(
                    f"{key}: latency {value:.3f} is above "
                    f"{ceiling:.3f} ({max_regression:.0%} over baseline "
                    f"{base_value:.3f})"
                )
        else:
            warnings.append(f"{key}: kind {kind!r} is informational only")
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.trajectory",
        description="Benchmark trajectory tools.",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on a >20%% regression vs BENCH_baseline.json",
    )
    parser.add_argument(
        "--trajectory", default=str(TRAJECTORY_PATH),
        help="trajectory file to read",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH),
        help="baseline file to compare against",
    )
    args = parser.parse_args(argv)
    records = load_records(args.trajectory)
    latest = latest_by_metric(records)
    print(f"trajectory: {len(records)} records, {len(latest)} metrics")
    for key, record in sorted(latest.items()):
        unit = f" {record.get('unit')}" if record.get("unit") else ""
        print(
            f"  {key}: {record.get('value'):.4g}{unit} "
            f"[{record.get('kind')}] @ {record.get('git_rev')}"
        )
    if not args.check:
        return 0
    failures, warnings = check_against_baseline(
        args.trajectory, args.baseline
    )
    for warning in warnings:
        print(f"WARN {warning}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("trajectory check ok: no regressions vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 10: distribution of each block's strongest frequency.

Paper (3.7M blocks, 35 days): ~25% of blocks peak at 1 cycle/day; a ~3%
bump sits at ~4.3 cycles/day — the artifact of restarting the probing
software every 5.5 hours (fixed in later datasets by weekly restarts).
"""

from repro.analysis import run_frequency_cdf


def test_fig10_freq_cdf(benchmark, record_output, global_study):
    cdf = benchmark.pedantic(
        run_frequency_cdf, kwargs=dict(study=global_study), rounds=1, iterations=1
    )
    record_output("fig10_freq_cdf", cdf.format_series())

    # The 1 cycle/day mass (paper ~25%).
    assert 0.15 < cdf.fraction_daily() < 0.45
    # The restart artifact exists but stays small (paper ~3%).
    assert 0.002 < cdf.fraction_artifact() < 0.08
    # The artifact sits at the restart frequency, ~4.36 cycles/day.
    assert abs(cdf.restart_cycles_per_day - 4.36) < 0.05
    # Without blocks dominated elsewhere the CDF would be degenerate.
    assert cdf.fraction_in(0.0, 0.9) > 0.2

"""Figure 16: country diurnal fraction versus per-capita GDP.

Paper: a weak negative linear fit (confidence coefficient -0.526); every
country with diurnal fraction above 0.15 has GDP below ~$15-18k, a third
of the United States'.
"""

from repro.analysis import run_country_table, run_gdp_scatter


def test_fig16_gdp_scatter(benchmark, record_output, global_study):
    def run():
        table = run_country_table(study=global_study, min_blocks=30)
        return run_gdp_scatter(table=table)

    scatter = benchmark.pedantic(run, rounds=1, iterations=1)
    record_output("fig16_gdp_scatter", scatter.format_series())

    fit = scatter.fit()
    # Negative relation (paper: -0.526; the synthetic covariates are less
    # noisy than real CIA data, so a stronger fit is expected).
    assert fit.r < -0.4
    assert fit.slope < 0
    assert fit.p_value < 0.01
    # High-diurnal countries are poor.
    assert scatter.high_diurnal_low_gdp()

"""Figure 6: 35-day FFT of a diurnal block peaks at k = 35.

The paper shows block 27.186.9/24 in the 35-day A_12w dataset: the same
block that peaked at k=14 in the two-week survey peaks at k=35 over 35
days (one bin per observed day).
"""

import numpy as np

from repro.core import compute_spectrum, diurnal_bin, measure_block
from repro.net import (
    Block24,
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
    parse_block,
)
from repro.probing import RoundSchedule


def run():
    behavior = merge_behaviors(
        make_always_on(60, p_response=0.9),
        make_diurnal(150, phase_s=8 * 3600.0, uptime_s=9 * 3600.0,
                     sigma_start_s=1800.0),
        make_dead(46),
    )
    block = Block24(parse_block("27.186.9/24"), behavior)
    schedule = RoundSchedule.for_days(35)
    result = measure_block(block, schedule, np.random.default_rng(6))
    spectrum = compute_spectrum(result.a_short[result.trim], schedule.round_s)
    return result, spectrum


def test_fig06_fft_35day(benchmark, record_output):
    result, spectrum = benchmark.pedantic(run, rounds=1, iterations=1)
    k_d = diurnal_bin(spectrum.n_samples, 660.0)
    amps = spectrum.amplitudes
    lines = [
        f"samples: {spectrum.n_samples} ({spectrum.duration_days():.1f} days)",
        f"diurnal bin k = {k_d} (paper: 35)",
        f"dominant bin  = {spectrum.dominant_bin()} "
        f"({spectrum.cycles_per_day(spectrum.dominant_bin()):.3f} cycles/day)",
        f"amplitude at k={k_d}: {amps[k_d]:.1f}; "
        f"strongest elsewhere (non-harmonic): "
        f"{np.delete(amps[1:200], [k_d - 1, k_d, k_d + 1, 2 * k_d - 1, 2 * k_d, 2 * k_d + 1]).max():.1f}",
        f"label: {result.report.label.value}",
    ]
    record_output("fig06_fft_35day", "\n".join(lines))

    # The observation spans 34 whole days after midnight trimming.
    assert k_d in (34, 35)
    assert spectrum.dominant_bin() in (k_d, k_d + 1)
    assert result.report.is_strict

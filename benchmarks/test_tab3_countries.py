"""Table 3: fraction of diurnal blocks, top countries plus the US.

Paper: Armenia/Georgia/Belarus/China lead (0.63/0.55/0.51/0.50); the
top-20 all have per-capita GDP under ~$18.4k; the US sits at 0.002 with
GDP $50.7k.
"""

from repro.analysis import run_country_table


def test_tab3_countries(benchmark, record_output, global_study):
    table = benchmark.pedantic(
        run_country_table,
        kwargs=dict(study=global_study, min_blocks=30),
        rounds=1,
        iterations=1,
    )
    record_output("tab3_countries", table.format_table(20))

    # China: the paper's dominant diurnal population.
    cn = table.row_of("CN")
    assert abs(cn.fraction_diurnal - 0.498) < 0.08
    # The US barely sleeps.
    us = table.row_of("US")
    assert us.fraction_diurnal < 0.02
    # Top of the table is poor; the US is rich and at the bottom.
    top = table.top(10)
    assert all(row.gdp_pc < 20000 for row in top[:5])
    assert us.fraction_diurnal < min(r.fraction_diurnal for r in top)
    # Measured fractions track the paper's Table 3 for big countries.
    big = [r for r in table.rows if r.blocks >= 300]
    assert big, "expected well-populated countries"
    for row in big:
        assert abs(row.fraction_diurnal - row.paper_fraction) < 0.09, row.code

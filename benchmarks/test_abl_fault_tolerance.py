"""Ablation: classification accuracy under injected measurement faults.

The robustness question behind the fault subsystem: how quickly does
diurnal detection degrade as the probe stream loses data?  A survey
population is measured clean and then re-measured under increasing probe
loss (0–20%) and under multi-round gap schedules.  Accuracy is judged
against ground truth (the strict label computed from true per-round
availability, which faults never touch), so borderline blocks flipping
under a reshuffled probe stream count symmetrically rather than as
one-sided "errors".  The pipeline must degrade gracefully — a few
percent of lost probes is everyday reality for a production prober — so
we assert there is no accuracy cliff at or below 5% loss, and that heavy
gap schedules refuse blocks (insufficient data) rather than silently
misclassifying them.
"""

from repro.core.pipeline import BatchConfig, BatchRunner
from repro.faults import FaultConfig
from repro.probing import RoundSchedule
from repro.simulation.scenarios import survey_population

N_BLOCKS = 30
SEED = 21
LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
GAP_SCHEDULES = ((0.0, 6.0), (1.0, 6.0), (2.0, 12.0), (4.0, 24.0))


def run_batch(blocks, schedule, faults=None):
    config = BatchConfig(faults=faults) if faults else BatchConfig()
    return BatchRunner(config).run(blocks, schedule, seed=SEED)


def score(batch):
    """(accuracy of strict label vs ground truth, refused fraction).

    Accuracy is taken over the blocks the degraded run still dares to
    classify; ``refused`` is the fraction it rejects as insufficient.
    Accuracy is None when every block was refused.
    """
    measured = [m for m in batch.measurements if not m.skipped]
    classified = [m for m in measured if m.report.is_classified]
    refused = 1.0 - len(classified) / len(measured) if measured else 0.0
    if not classified:
        return None, refused
    correct = sum(
        1
        for m in classified
        if m.report.is_strict == m.true_report.is_strict
    )
    return correct / len(classified), refused


def run_sweep():
    blocks = survey_population(N_BLOCKS, seed=SEED)
    schedule = RoundSchedule.for_days(14)

    loss_rows = []
    for rate in LOSS_RATES:
        faults = (
            FaultConfig(probe_loss_rate=rate, seed=3) if rate else None
        )
        acc, refused = score(run_batch(blocks, schedule, faults))
        loss_rows.append((rate, acc, refused))

    gap_rows = []
    for gaps_per_day, mean_gap in GAP_SCHEDULES:
        faults = (
            FaultConfig(
                gaps_per_day=gaps_per_day, mean_gap_rounds=mean_gap, seed=3
            )
            if gaps_per_day
            else None
        )
        acc, refused = score(run_batch(blocks, schedule, faults))
        gap_rows.append((gaps_per_day, mean_gap, acc, refused))

    return loss_rows, gap_rows


def fmt_acc(acc):
    return "   (none)" if acc is None else f"{acc:>9.2%}"


def test_abl_fault_tolerance(benchmark, record_output):
    loss_rows, gap_rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [f"{'loss rate':>10}{'accuracy':>9}{'refused':>10}"]
    for rate, acc, refused in loss_rows:
        lines.append(f"{rate:>10.0%}{fmt_acc(acc)}{refused:>10.2%}")
    lines.append("")
    lines.append(
        f"{'gaps/day':>10}{'mean len':>10}{'accuracy':>9}{'refused':>10}"
    )
    for gaps_per_day, mean_gap, acc, refused in gap_rows:
        lines.append(
            f"{gaps_per_day:>10.1f}{mean_gap:>10.1f}{fmt_acc(acc)}{refused:>10.2%}"
        )
    record_output("abl_fault_tolerance", "\n".join(lines))

    by_rate = {rate: acc for rate, acc, _ in loss_rows}
    acc_clean = by_rate[0.0]
    assert acc_clean is not None and acc_clean >= 0.8
    # Graceful degradation: no accuracy cliff at or below 5% probe loss.
    for rate in (0.02, 0.05):
        assert by_rate[rate] >= acc_clean - 0.1, (
            f"accuracy cliff at {rate:.0%} loss: {by_rate[rate]:.2%}"
            f" vs clean {acc_clean:.2%}"
        )
    # Even 20% loss degrades, not collapses.
    assert by_rate[0.2] >= acc_clean - 0.25
    # Mild gap schedules stay accurate...
    mild_acc = gap_rows[1][2]
    assert mild_acc is not None and mild_acc >= acc_clean - 0.1
    # ...and heavier ones refuse more rather than silently misclassify:
    # refusal is monotone in gap severity, and whatever is still accepted
    # remains reasonably accurate.
    refusals = [row[3] for row in gap_rows]
    assert refusals == sorted(refusals)
    for _, _, acc, _ in gap_rows:
        assert acc is None or acc >= acc_clean - 0.2


def test_fault_injection_overhead(benchmark):
    """Injecting faults must not blow up measurement cost: the degraded
    path (grid + fill + audit) stays within 2x of the clean path."""
    import time

    blocks = survey_population(8, seed=SEED)
    schedule = RoundSchedule.for_days(7)

    t0 = time.perf_counter()
    run_batch(blocks, schedule)
    clean_s = time.perf_counter() - t0

    faults = FaultConfig(
        probe_loss_rate=0.05, round_drop_rate=0.05, gaps_per_day=1.0, seed=3
    )

    def degraded():
        return run_batch(blocks, schedule, faults)

    result = benchmark.pedantic(degraded, rounds=1, iterations=1)
    assert len(result.measurements) + len(result.failures) == len(blocks)
    degraded_s = benchmark.stats.stats.mean
    assert degraded_s < max(2.0 * clean_s, clean_s + 1.0)

"""Application: organization-level diurnal comparison (section 2.3.2).

The paper builds the AS-to-organization mapping precisely so operators
can be compared; this bench prints the per-organization table over the
measured world and checks that organizations inherit (but can deviate
from) their national baseline.
"""

import numpy as np

from repro.analysis import run_org_table


def test_app_orgs(benchmark, record_output, global_study):
    table = benchmark.pedantic(
        run_org_table,
        kwargs=dict(study=global_study, min_blocks=60),
        rounds=1,
        iterations=1,
    )
    record_output("app_orgs", table.format_table(15))

    assert len(table.rows) >= 10
    # Organizations carry their country's character...
    errs = [abs(r.deviates_from_country) for r in table.rows]
    assert np.median(errs) < 0.1
    # ...and the most diurnal organizations are in diurnal countries.
    top = table.top(5)
    assert all(r.country_fraction > 0.05 for r in top)

"""Ablation: separate EWMAs of p and t versus direct EWMA of the ratio.

Section 2.1.2 argues that smoothing the per-round ratio p/t (the legacy
estimator behind dataset A_12w) consistently over-estimates availability,
"for the same reason one must use geometric mean to summarize normalized
results", while tracking numerator and denominator separately stays
unbiased.  This bench quantifies the bias across availability levels.
"""

import numpy as np

from repro.core.estimator import AvailabilityEstimator, DirectEwmaEstimator


def run_comparison():
    rows = []
    for true_a in (0.1, 0.3, 0.5, 0.7, 0.9):
        rng = np.random.default_rng(int(true_a * 100))
        count_est = AvailabilityEstimator()
        ratio_est = DirectEwmaEstimator()
        count_vals = []
        ratio_vals = []
        for _ in range(4000):
            # Stop-on-first-positive sampling, 15-probe cap.
            t, p = 0, 0
            while t < 15:
                t += 1
                if rng.random() < true_a:
                    p = 1
                    break
            count_est.observe(p, t)
            ratio_est.observe(p, t)
            count_vals.append(count_est.a_short)
            ratio_vals.append(ratio_est.a_short)
        rows.append(
            (true_a, float(np.mean(count_vals[500:])), float(np.mean(ratio_vals[500:])))
        )
    return rows


def test_abl_direct_ewma(benchmark, record_output):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [f"{'true A':>8}{'count EWMA':>12}{'ratio EWMA':>12}{'ratio bias':>12}"]
    for true_a, count_mean, ratio_mean in rows:
        lines.append(
            f"{true_a:>8.1f}{count_mean:>12.3f}{ratio_mean:>12.3f}"
            f"{ratio_mean - true_a:>+12.3f}"
        )
    record_output("abl_direct_ewma", "\n".join(lines))

    for true_a, count_mean, ratio_mean in rows:
        # The paper's estimator is close to truth everywhere...
        assert abs(count_mean - true_a) < 0.06, true_a
        # ...the legacy ratio estimator over-estimates at low/mid A.
        if true_a <= 0.7:
            assert ratio_mean > true_a + 0.05, true_a
        # And it never under-shoots below the unbiased one by much.
        assert ratio_mean > count_mean - 0.02, true_a

"""Figures 12 and 13: where blocks are, and where they sleep.

Paper: block density concentrates in North America, Europe and East
Asia, with country-centroid geolocation artifacts in Brazil/Russia/
Australia; the diurnal-fraction map is near zero in the US, Western
Europe and Japan and high across Asia, Eastern Europe and South America.
"""

import numpy as np

from repro.analysis import run_world_maps


def test_fig12_13_maps(benchmark, record_output, global_study):
    maps = benchmark.pedantic(
        run_world_maps, kwargs=dict(study=global_study), rounds=1, iterations=1
    )
    record_output("fig12_13_maps", maps.format_series())

    # Figure 12: coverage and concentration.
    assert 0.90 < maps.geolocated_fraction < 0.96  # paper: 93%
    us_cell = maps.counts.value_at(40.0, -98.0)
    ocean_cell = maps.counts.value_at(-40.0, -30.0)  # South Atlantic
    assert us_cell > 0
    assert ocean_cell == 0
    # Centroid artifact: the Brazilian centroid cell holds blocks even
    # though it sits away from the population.
    assert maps.counts.value_at(-14.2, -51.9) > 0

    # Figure 13: the US sleeps far less than China.
    us = maps.diurnal_fraction.value_at(40.0, -98.0)
    cn = maps.diurnal_fraction.value_at(35.9, 104.2)
    assert not np.isnan(us) and not np.isnan(cn)
    assert us < 0.05
    assert cn > 0.3

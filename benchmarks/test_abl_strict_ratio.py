"""Ablation: the strict test's 2x dominance threshold.

Strict diurnalness requires the 1-cycle/day amplitude to be at least
twice the strongest non-harmonic competitor.  Sweeping that ratio over
the Table 1 validation shows the trade the paper chose: lower thresholds
find more of the truly diurnal blocks but start flagging noise, higher
ones drive precision toward 1 at the cost of recall.
"""

from repro.analysis import run_diurnal_validation
from repro.core.classify import ClassifierConfig
from repro.core.pipeline import MeasurementConfig

RATIOS = (1.0, 1.5, 2.0, 3.0, 4.0)


def run_sweep():
    rows = []
    for ratio in RATIOS:
        config = MeasurementConfig(classifier=ClassifierConfig(strict_ratio=ratio))
        result = run_diurnal_validation(n_blocks=80, seed=2, config=config)
        rows.append((ratio, result))
    return rows


def test_abl_strict_ratio(benchmark, record_output):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'ratio':>7}{'precision':>11}{'recall':>9}{'accuracy':>10}"]
    for ratio, result in rows:
        lines.append(
            f"{ratio:>7.1f}{result.precision:>11.2%}{result.recall:>9.2%}"
            f"{result.accuracy:>10.2%}"
        )
    record_output("abl_strict_ratio", "\n".join(lines))

    by_ratio = dict(rows)
    # Recall can only fall as the test hardens.
    recalls = [by_ratio[r].recall for r in RATIOS]
    assert all(b <= a + 0.02 for a, b in zip(recalls, recalls[1:]))
    # The paper's choice keeps precision high...
    assert by_ratio[2.0].precision > 0.85
    # ...while the loosest setting catches at least as many true blocks.
    assert by_ratio[1.0].recall >= by_ratio[4.0].recall

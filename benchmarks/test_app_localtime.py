"""Application: absolute wake-time recovery from FFT phase.

The paper leaves "tie phase to time-of-day" as future work (section 5.2).
With the series trimmed to midnight UTC, the calibration is exact up to
the estimator's group delay: correcting for the EWMA lag (~1.65 h at
α=0.1) recovers each strict-diurnal block's local wake hour to within
about an hour.
"""

import numpy as np

from repro.core import (
    circular_hour_difference,
    ewma_lag_hours,
    local_hour,
    wake_local_hour,
)


def recover(study):
    m, w = study.measurement, study.world
    mask = m.strict_mask
    estimated = wake_local_hour(
        m.phases[mask],
        w.lon[mask],
        uptime_hours=w.uptime_frac[mask] * 24,
        lag_hours=ewma_lag_hours(),
    )
    truth = local_hour(w.onset_frac[mask] * 24, w.lon[mask])
    return circular_hour_difference(estimated, truth)


def test_app_localtime(benchmark, record_output, global_study):
    errors = benchmark.pedantic(
        recover, args=(global_study,), rounds=1, iterations=1
    )
    text = (
        f"strict-diurnal blocks calibrated: {len(errors)}\n"
        f"median wake-hour error: {np.median(errors):.2f} h\n"
        f"within 1 hour: {np.mean(errors <= 1):.1%}\n"
        f"within 2 hours: {np.mean(errors <= 2):.1%}\n"
        f"(EWMA group-delay correction: {ewma_lag_hours():.2f} h)"
    )
    record_output("app_localtime", text)

    assert len(errors) > 500
    assert np.median(errors) < 1.5
    assert np.mean(errors <= 2) > 0.9

"""Shared fixtures for the benchmark harness.

The global (section 4/5) benchmarks share one full-size study — an A12W
analogue: a 12k-block world measured over 35 days with 5.5-hour prober
restarts.  Each benchmark prints (and saves under ``benchmarks/results/``)
the same rows/series the paper's table or figure reports, then asserts
the qualitative shape.
"""

from pathlib import Path

import pytest

from benchmarks.trajectory import TrajectoryRecorder
from repro.analysis import GlobalStudy

RESULTS_DIR = Path(__file__).parent / "results"

# Scaled from the paper's 3.7M blocks; fractions are scale-invariant.
STUDY_BLOCKS = 12000
STUDY_SEED = 12


@pytest.fixture(scope="session")
def global_study() -> GlobalStudy:
    """The A12W-analogue measurement shared by the global benchmarks."""
    return GlobalStudy.run(n_blocks=STUDY_BLOCKS, seed=STUDY_SEED)


@pytest.fixture(scope="session")
def trajectory() -> TrajectoryRecorder:
    """The session's perf-trajectory recorder.

    Benchmarks ``trajectory.record(...)`` their headline numbers;
    records append to the cumulative
    ``results/BENCH_trajectory.json`` once, at session teardown, and
    ``python -m benchmarks.trajectory --check`` (the CI step) diffs the
    latest values against the committed ``BENCH_baseline.json``.
    """
    recorder = TrajectoryRecorder()
    yield recorder
    recorder.flush()


@pytest.fixture()
def record_output():
    """Save a benchmark's table/series text and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _record

"""Ablation: the admission controller under 1x/4x/10x offered load.

Two contracts, one table.  *Under overload* the bounded ingest queue
must hold service rate steady and memory flat while the shedder drops
the excess (shed ratio tracks ``1 - 1/load``): a 10x storm costs
observations — explicitly, deterministically — never gigabytes or a
crash.  *Unloaded*, :meth:`AdmissionController.ingest` with an empty
queue must be a pass-through, priced under the same <5% hot-path gate
the observability layer answers to.

Each level reports sustained serviced-observations/sec, shed ratio,
queue ceiling, and process peak RSS; the run also writes
``abl_overload.json`` so the CI chaos job uploads the measured numbers
as an artifact.
"""

import json
import resource
import time
from pathlib import Path

import numpy as np

from repro.stream import (
    AdmissionController,
    OverloadConfig,
    StreamConfig,
    StreamEngine,
)

RESULTS_DIR = Path(__file__).parent / "results"

N_BLOCKS = 4
N_DAYS = 8
SEED = 46
ROUND = 660.0
DAY = 86400.0
REPS = 7
MAX_OVERHEAD = 0.05
LOADS = (1, 4, 10)
CAPACITY = 1024


def workload():
    rng = np.random.default_rng(SEED)
    n = int(N_DAYS * DAY / ROUND)
    times = np.arange(n) * ROUND
    series = [
        0.5
        + 0.4 * np.sin(2 * np.pi * times / DAY + phase)
        + 0.02 * rng.standard_normal(n)
        for phase in rng.uniform(0.0, 2 * np.pi, N_BLOCKS)
    ]
    return times, series


def peak_rss_kb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_load(multiplier, times, series, config):
    """Offer ``multiplier`` observations per service slot; drain; flush."""
    engine = StreamEngine(config)
    controller = AdmissionController(
        engine,
        OverloadConfig(capacity=CAPACITY, seed=SEED, shed_log_capacity=1),
    )
    credit = 0.0
    t0 = time.perf_counter()
    for r in range(len(times)):
        for b in range(N_BLOCKS):
            controller.submit(b, times[r], series[b][r])
            credit += 1.0 / multiplier
            whole = int(credit)
            if whole:
                controller.pump(whole)
                credit -= whole
    while controller.depth:
        controller.pump(256)
    controller.flush()
    wall = time.perf_counter() - t0
    return wall, controller


def run_unloaded(config, times, series, with_controller):
    engine = StreamEngine(config)
    if with_controller:
        target = AdmissionController(engine).ingest
    else:
        target = engine.ingest
    t0 = time.perf_counter()
    for b in range(N_BLOCKS):
        values = series[b]
        for r in range(len(times)):
            target(b, times[r], values[r])
    engine.flush()
    return time.perf_counter() - t0


def run_overhead_pairs(config, times, series):
    """Interleaved (bare engine, admission fast path) timing pairs."""
    pairs = []
    for _ in range(REPS):
        t_bare = run_unloaded(config, times, series, with_controller=False)
        t_admit = run_unloaded(config, times, series, with_controller=True)
        pairs.append((t_bare, t_admit))
    return pairs


def run_ablation():
    config = StreamConfig.for_days(2.0, hop_days=1.0, label_dwell=1)
    times, series = workload()
    run_unloaded(config, times, series, with_controller=True)  # warm
    levels = []
    for load in LOADS:
        wall, controller = run_load(load, times, series, config)
        levels.append(
            {
                "offered_load": load,
                "offered_obs": controller.n_submitted,
                "serviced_per_s": controller.n_serviced / wall,
                "shed_ratio": controller.shed_ratio,
                "max_depth": controller.max_depth,
                "episodes": controller.n_episodes,
                "wall_s": wall,
                "peak_rss_kb": peak_rss_kb(),
            }
        )
    pairs = run_overhead_pairs(config, times, series)
    return levels, pairs


def test_abl_overload(benchmark, record_output):
    levels, pairs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    overhead = min(t_a / t_b for t_b, t_a in pairs) - 1.0

    artifact = RESULTS_DIR / "abl_overload.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact.write_text(
        json.dumps(
            {"levels": levels, "unloaded_overhead": overhead}, indent=2
        )
    )

    lines = [
        f"{'load':>6}{'serviced/s':>12}{'shed':>8}{'max depth':>11}"
        f"{'rss MB':>9}",
    ]
    for row in levels:
        lines.append(
            f"{row['offered_load']:>5}x"
            f"{row['serviced_per_s']:>12.0f}"
            f"{row['shed_ratio']:>8.2%}"
            f"{row['max_depth']:>11}"
            f"{row['peak_rss_kb'] / 1024:>9.0f}"
        )
    lines += [
        "",
        f"unloaded admission overhead: {overhead:+.2%} "
        f"(budget {MAX_OVERHEAD:.0%}, best of {REPS})",
        f"artifact: {artifact.name}",
    ]
    record_output("abl_overload", "\n".join(lines))

    by_load = {row["offered_load"]: row for row in levels}
    # Balanced load sheds nothing; the queue never engages.
    assert by_load[1]["shed_ratio"] == 0.0
    # Overload sheds roughly the excess and never exceeds the cap.
    assert 0.5 < by_load[10]["shed_ratio"] < 1.0
    assert by_load[4]["shed_ratio"] < by_load[10]["shed_ratio"]
    for row in levels:
        assert row["max_depth"] <= CAPACITY + 1
    # Bounded memory: 10x offered load may not cost a growing queue.
    # ru_maxrss is process-monotonic, so the growth across levels is an
    # upper bound on what overload itself added.
    rss_growth_kb = by_load[10]["peak_rss_kb"] - by_load[1]["peak_rss_kb"]
    assert rss_growth_kb < 256 * 1024, f"RSS grew {rss_growth_kb} KB"
    # Unloaded, admission is a pass-through under the hot-path gate.
    assert overhead < MAX_OVERHEAD, (
        f"unloaded admission overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%}"
    )

"""Figure 11: fraction of diurnal blocks across years of surveys.

Paper (63 surveys from three sites, Dec 2009 - 2013): the diurnal
fraction is relatively stable (~12-14%) but shows a marked decline after
2012, consistent with dynamically addressed hosts shifting to always-on
use; the level agrees with A_12w's 11%.
"""

from repro.analysis import run_longterm_trend


def test_fig11_longterm(benchmark, record_output):
    trend = benchmark.pedantic(
        run_longterm_trend,
        kwargs=dict(n_snapshots=14, blocks_per_snapshot=1200, seed=11),
        rounds=1,
        iterations=1,
    )
    record_output("fig11_longterm", trend.format_series())

    # Stable pre-2012 level near the A_12w fraction.
    assert 0.09 < trend.pre_2012_mean() < 0.18
    # The post-2012 decline.
    assert trend.declines_after_2012()
    assert trend.fractions[-1] < trend.pre_2012_mean()
    # Sites rotate like the paper's w/c/j series.
    assert set(trend.sites) == {"w", "c", "j"}

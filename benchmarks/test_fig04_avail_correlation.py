"""Figure 4: correlation of actual (A) and estimated (Â_s) availability.

Paper: density hugs the x=y line; per-0.1-bin quartiles confirm the
estimator is unbiased; overall correlation coefficient 0.95685.
"""

import numpy as np

from repro.analysis import run_availability_validation


def test_fig04_avail_correlation(benchmark, record_output):
    result = benchmark.pedantic(
        run_availability_validation,
        kwargs=dict(n_blocks=120, seed=4),
        rounds=1,
        iterations=1,
    )
    record_output("fig04_avail_correlation", result.format_table())

    # Paper: 0.95685 overall.
    assert result.correlation_short > 0.90
    # Unbiased: per-bin medians sit on the diagonal.
    bq = result.short_quartiles()
    valid = bq.counts > 500
    err = np.abs(bq.median[valid] - bq.bin_centers[valid])
    assert np.nanmedian(err) < 0.06
    assert abs(result.bias()) < 0.02
    # The density mass concentrates near the diagonal.
    grid = result.density(n_bins=20)
    diagonal_band = sum(
        grid[i, j]
        for i in range(20)
        for j in range(20)
        if abs(i - j) <= 2
    )
    assert diagonal_band > 0.8

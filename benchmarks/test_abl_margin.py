"""Ablation: the operational margin (half the deviation EWMA).

Â_o = max(Â_l − margin·d̂_l, 0.1).  The paper picks margin = 1/2 to keep
Â_o under true A nearly always without collapsing to the floor.  This
bench sweeps the margin and reports the under-estimation rate and the
average headroom lost, exposing the trade-off the choice navigates.
"""

import numpy as np

from repro.core import MeasurementConfig, measure_block
from repro.core.estimator import EstimatorConfig
from repro.probing import RoundSchedule
from repro.simulation.scenarios import survey_population

MARGINS = (0.0, 0.25, 0.5, 1.0, 2.0)


def run_sweep():
    blocks = survey_population(30, seed=3)
    schedule = RoundSchedule.for_days(7)
    rows = []
    for margin in MARGINS:
        config = MeasurementConfig(
            estimator=EstimatorConfig(deviation_margin=margin)
        )
        children = np.random.SeedSequence(55).spawn(len(blocks))
        under = []
        gap = []
        for block, child in zip(blocks, children):
            rng = np.random.default_rng(child)
            result = measure_block(block, schedule, rng, config)
            if result.skipped:
                continue
            under.append(result.underestimate_fraction())
            comparable = result.true_availability >= 0.1
            gap.append(
                float(
                    (
                        result.true_availability[comparable]
                        - result.a_operational[comparable]
                    ).mean()
                )
            )
        rows.append((margin, float(np.mean(under)), float(np.mean(gap))))
    return rows


def test_abl_margin(benchmark, record_output):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'margin':>8}{'P(A_o<=A)':>12}{'mean A-A_o':>12}"]
    for margin, under, gap in rows:
        lines.append(f"{margin:>8.2f}{under:>12.3f}{gap:>+12.3f}")
    record_output("abl_margin", "\n".join(lines))

    by_margin = {m: (u, g) for m, u, g in rows}
    # No margin: the long-term estimate alone overestimates too often.
    assert by_margin[0.0][0] < by_margin[0.5][0]
    # The paper's 1/2 already achieves the ~94% goal...
    assert by_margin[0.5][0] > 0.9
    # ...and larger margins only burn headroom (larger positive gap).
    assert by_margin[2.0][1] > by_margin[0.5][1]
    # Under-estimation rate grows monotonically with the margin.
    unders = [u for _, u, _ in rows]
    assert all(b >= a - 0.02 for a, b in zip(unders, unders[1:]))

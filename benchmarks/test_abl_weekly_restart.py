"""Ablation: weekly prober restarts kill the Figure 10 artifact.

The paper notes that measurements starting 2014-04 (A16all) moved the
restart interval from 5.5 hours to about a week "to reduce this effect".
Measuring the same world under both policies shows the ~4.3 cycles/day
bump present under the A12W policy and absent under the A16ALL policy.
"""

from repro.analysis import GlobalStudy, run_frequency_cdf
from repro.datasets import dataset
from repro.simulation.fastsim import measure_world
from repro.simulation.internet import WorldConfig, generate_world


def run_both():
    world = generate_world(WorldConfig(n_blocks=6000, seed=16))
    results = {}
    for name in ("A12W", "A16ALL"):
        schedule = dataset(name).schedule()
        measurement = measure_world(world, schedule, seed=99)
        study = GlobalStudy(
            world=world,
            schedule=schedule,
            measurement=measurement,
            geodb=world.build_geodb(),
        )
        results[name] = run_frequency_cdf(study=study)
    return results


def test_abl_weekly_restart(benchmark, record_output):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    a12w = results["A12W"]
    a16 = results["A16ALL"]
    text = (
        f"A12W   (5.5-hour restarts): artifact mass at 4.36 c/d = "
        f"{a12w.fraction_in(4.1, 4.65):.2%}\n"
        f"A16ALL (weekly restarts):   artifact mass at 4.36 c/d = "
        f"{a16.fraction_in(4.1, 4.65):.2%}\n"
        f"daily mass: A12W {a12w.fraction_daily():.1%}, "
        f"A16ALL {a16.fraction_daily():.1%}"
    )
    record_output("abl_weekly_restart", text)

    # The artifact exists under the A12W policy...
    assert a12w.fraction_in(4.1, 4.65) > 0.004
    # ...and weekly restarts remove (nearly) all of it.
    assert a16.fraction_in(4.1, 4.65) < a12w.fraction_in(4.1, 4.65) / 2
    # Diurnal detection itself is unaffected by the policy change.
    assert abs(a12w.fraction_daily() - a16.fraction_daily()) < 0.05

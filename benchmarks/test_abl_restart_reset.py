"""Ablation: what if prober restarts lost the estimator's state?

The production prober checkpoints estimator state, so the ~4.3 cycles/day
Figure 10 artifact stays a small bump.  This bench compares spectra of a
stable block measured with checkpointed restarts against a stateless
variant (short-term EWMA rebuilt from the coarse initial value at every
5.5-hour restart): losing state turns the restart frequency into the
dominant spectral line — the failure mode the checkpointing avoids.
"""

import numpy as np

from repro.core import MeasurementConfig, compute_spectrum, measure_block
from repro.core.estimator import EstimatorConfig, RestartPolicy
from repro.net import Block24, make_always_on, make_dead, merge_behaviors
from repro.probing import RoundSchedule


def artifact_strength(reset_short: bool):
    block = Block24(
        5,
        merge_behaviors(make_always_on(100, p_response=0.3), make_dead(156)),
    )
    schedule = RoundSchedule.for_days(14, restart_interval_s=5.5 * 3600)
    config = MeasurementConfig(
        estimator=EstimatorConfig(restart=RestartPolicy(reset_short=reset_short))
    )
    result = measure_block(block, schedule, np.random.default_rng(42), config)
    spectrum = compute_spectrum(result.a_short[result.trim], schedule.round_s)
    cpd = np.array(
        [spectrum.cycles_per_day(k) for k in range(spectrum.n_bins)]
    )
    amps = spectrum.amplitudes
    artifact = amps[(cpd > 4.1) & (cpd < 4.6)].max()
    background = amps[(cpd > 2.0) & (cpd < 3.5)].max()
    return artifact, background


def run_both():
    return artifact_strength(False), artifact_strength(True)


def test_abl_restart_reset(benchmark, record_output):
    (keep_art, keep_bg), (reset_art, reset_bg) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    text = (
        f"checkpointed restart: artifact={keep_art:.2f} background={keep_bg:.2f} "
        f"ratio={keep_art / keep_bg:.2f}\n"
        f"stateless restart:    artifact={reset_art:.2f} background={reset_bg:.2f} "
        f"ratio={reset_art / reset_bg:.2f}"
    )
    record_output("abl_restart_reset", text)

    # Stateless restarts manufacture a strong periodic artifact...
    assert reset_art / reset_bg > 2.0
    # ...that checkpointing keeps near the noise floor.
    assert keep_art / keep_bg < reset_art / reset_bg / 2

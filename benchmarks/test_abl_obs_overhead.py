"""Ablation: cost of the observability layer on the streaming hot path.

The instrumentation contract has two halves.  Parity — instrumented runs
are bit-identical (``tests/test_obs_parity.py``) — and *price*: full
instrumentation (a live :class:`~repro.obs.MetricsRegistry` attached to
the engine plus the module-level instruments in classify/timeseries/io)
must cost less than 5% wall time over the :class:`~repro.obs.
NullRegistry` default on an ingest-dominated workload.

The engine keeps hot-path tallies as plain ints and syncs them to the
registry at close/flush boundaries, so the per-observation cost of
"metrics on" is an integer add, not a locked counter update; this
benchmark is the regression gate for that design.

Timings use best-of-N minima (the standard de-noising for wall-clock
comparisons); the run also exports a JSON metrics snapshot so CI uploads
the measured counter values alongside the timing table.
"""

import time
from pathlib import Path

import numpy as np

from repro.obs import (
    EventLogger,
    MetricsRegistry,
    install_metrics,
    uninstall_metrics,
    write_json_snapshot,
)
from repro.stream import StreamConfig, StreamEngine

RESULTS_DIR = Path(__file__).parent / "results"

N_BLOCKS = 4
N_DAYS = 10
SEED = 44
ROUND = 660.0
DAY = 86400.0
REPS = 7
MAX_OVERHEAD = 0.05


def workload():
    rng = np.random.default_rng(SEED)
    n = int(N_DAYS * DAY / ROUND)
    times = np.arange(n) * ROUND
    values = (
        0.5
        + 0.4 * np.sin(2 * np.pi * times / DAY)
        + 0.02 * rng.standard_normal(n)
    )
    return times, values


def run_engine(config, times, values, metrics=None, events=None):
    engine = StreamEngine(config, metrics=metrics, events=events)
    t0 = time.perf_counter()
    for block in range(N_BLOCKS):
        engine.ingest_many(block, times, values)
    engine.flush()
    return time.perf_counter() - t0, engine


def run_pairs(config, times, values):
    """Back-to-back (null, instrumented) timing pairs.

    Interleaving keeps both sides inside the same load phases of a noisy
    machine; a separate block of runs per side can land one side
    entirely in a busy phase and fake a large overhead.
    """
    pairs = []
    registry = None
    for _ in range(REPS):
        t_null, _ = run_engine(config, times, values)
        registry = MetricsRegistry()
        install_metrics(registry)
        try:
            t_inst, _ = run_engine(config, times, values, metrics=registry)
        finally:
            uninstall_metrics()
        pairs.append((t_null, t_inst))
    return pairs, registry


def run_ablation():
    config = StreamConfig.for_days(2.0, hop_days=1.0, label_dwell=1)
    times, values = workload()
    # Warm both paths (imports, allocator, caches) before timing.
    run_engine(config, times, values)
    pairs, registry = run_pairs(config, times, values)
    return pairs, registry


def test_abl_obs_overhead(benchmark, record_output, trajectory):
    pairs, registry = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    t_null = min(t for t, _ in pairs)
    t_inst = min(t for _, t in pairs)
    # The gate uses the cleanest head-to-head pair: both runs of a pair
    # share the machine's load phase, so their ratio is the least noisy
    # estimate of the true overhead.
    overhead = min(t_i / t_n for t_n, t_i in pairs) - 1.0
    n_rounds = N_BLOCKS * int(N_DAYS * DAY / ROUND)

    snapshot_path = RESULTS_DIR / "abl_obs_overhead_metrics.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json_snapshot(snapshot_path, registry)

    lines = [
        f"{'path':>16}{'wall ms':>10}{'us/round':>10}",
        f"{'null registry':>16}{t_null * 1e3:>10.1f}"
        f"{t_null / n_rounds * 1e6:>10.2f}",
        f"{'instrumented':>16}{t_inst * 1e3:>10.1f}"
        f"{t_inst / n_rounds * 1e6:>10.2f}",
        "",
        f"overhead: {overhead:+.2%} (budget {MAX_OVERHEAD:.0%}, "
        f"best of {REPS})",
        f"metrics snapshot: {snapshot_path.name}",
    ]
    record_output("abl_obs_overhead", "\n".join(lines))
    trajectory.record(
        "abl_obs_overhead", "metrics_overhead",
        overhead, unit="fraction", kind="ratio",
    )
    trajectory.record(
        "abl_obs_overhead", "instrumented_us_per_round",
        t_inst / n_rounds * 1e6, unit="us", kind="latency",
    )

    # The instrumented run counted what it processed...
    counters = registry.snapshot()["counters"]
    assert counters["stream_observations_total"] == n_rounds
    # ...and cost less than the budget to do so.
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%}: null {t_null * 1e3:.1f}ms, "
        f"instrumented {t_inst * 1e3:.1f}ms"
    )


def run_event_pairs(config, times, values, tmp_path):
    """Back-to-back (null event log, live event log) timing pairs.

    The event logger's hot-path contract: the per-observation cost of
    "events on" is the null check on the late branch — clean
    observations never build a record, and window-close records are
    debug-level, filtered before serialization at the default info
    sink.  This gate catches anyone moving record construction onto
    the per-observation path.
    """
    pairs = []
    log = None
    for i in range(REPS):
        t_null, _ = run_engine(config, times, values)
        log = EventLogger(tmp_path / f"events-{i}.jsonl", level="info")
        try:
            t_events, _ = run_engine(config, times, values, events=log)
        finally:
            log.close()
        pairs.append((t_null, t_events))
    return pairs, log


def test_abl_event_log_overhead(benchmark, record_output, tmp_path):
    config = StreamConfig.for_days(2.0, hop_days=1.0, label_dwell=1)
    times, values = workload()

    def run():
        run_engine(config, times, values)  # warm both paths
        return run_event_pairs(config, times, values, tmp_path)

    pairs, log = benchmark.pedantic(run, rounds=1, iterations=1)
    t_null = min(t for t, _ in pairs)
    t_events = min(t for _, t in pairs)
    overhead = min(t_e / t_n for t_n, t_e in pairs) - 1.0
    n_rounds = N_BLOCKS * int(N_DAYS * DAY / ROUND)

    lines = [
        f"{'path':>16}{'wall ms':>10}{'us/round':>10}",
        f"{'null event log':>16}{t_null * 1e3:>10.1f}"
        f"{t_null / n_rounds * 1e6:>10.2f}",
        f"{'event log on':>16}{t_events * 1e3:>10.1f}"
        f"{t_events / n_rounds * 1e6:>10.2f}",
        "",
        f"overhead: {overhead:+.2%} (budget {MAX_OVERHEAD:.0%}, "
        f"best of {REPS})",
    ]
    record_output("abl_event_log_overhead", "\n".join(lines))

    # A clean stream logs only the label transition of each block (a
    # close-boundary record, not a per-observation one): the per-round
    # cost must be the null checks alone.
    assert log.n_records == N_BLOCKS
    assert overhead < MAX_OVERHEAD, (
        f"event-log overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%}: "
        f"null {t_null * 1e3:.1f}ms, events {t_events * 1e3:.1f}ms"
    )
